"""Tests for the sensitivity/regret analysis."""

import pytest

from repro.core.sensitivity import PERTURBATIONS, sensitivity_report


def test_report_covers_requested_parameters(small_params):
    entries = sensitivity_report(small_params, relative_perturbation=0.2)
    assert {e.parameter for e in entries} == set(PERTURBATIONS)


def test_regret_is_nonnegative(small_params):
    """Optimizing with a wrong input can never beat optimizing with the
    truth (evaluated under the truth)."""
    for perturbation in (0.25, -0.25):
        entries = sensitivity_report(
            small_params, relative_perturbation=perturbation
        )
        for entry in entries:
            assert entry.regret >= -1e-9, entry.parameter


def test_regret_small_for_small_errors(small_params):
    """Near the optimum the objective is flat (envelope theorem): a 10%
    input error costs far less than 10% wall-clock."""
    entries = sensitivity_report(small_params, relative_perturbation=0.1)
    for entry in entries:
        assert entry.regret < 0.05, entry.parameter


def test_elasticity_definition(small_params):
    entries = sensitivity_report(small_params, relative_perturbation=0.2)
    for entry in entries:
        assert entry.elasticity == pytest.approx(entry.regret / 0.2)


def test_validation(small_params):
    with pytest.raises(ValueError):
        sensitivity_report(small_params, relative_perturbation=0.0)
    with pytest.raises(ValueError):
        sensitivity_report(small_params, parameters=("bogus",))


def test_kappa_requires_quadratic(small_params):
    from dataclasses import replace
    from repro.speedup.amdahl import AmdahlSpeedup

    params = replace(
        small_params, speedup=AmdahlSpeedup(0.001, max_scale=2_000.0)
    )
    with pytest.raises(TypeError, match="QuadraticSpeedup"):
        sensitivity_report(params, parameters=("kappa",))
