"""Tests for the expected-wall-clock model (Formulas 13, 18, 21, 22, 6)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.notation import ModelParameters
from repro.core.wallclock import (
    expected_rollback_loss,
    expected_wallclock,
    self_consistent_wallclock,
    single_level_wallclock,
    time_portions,
    wallclock_gradient_n,
    wallclock_gradient_x,
)
from repro.costs.model import LevelCostModel
from repro.failures.rates import FailureRates
from repro.speedup.quadratic import QuadraticSpeedup


class TestRollbackLoss:
    def test_formula_18_by_hand(self, small_params):
        """Check E(Gamma_i) against a hand computation."""
        x = np.array([10.0, 5.0, 2.0, 2.0])
        n = 1_000.0
        f = small_params.productive_time(n)
        c = small_params.costs.checkpoint_costs(n)  # [1, 2.5, 4, 12]
        loss = expected_rollback_loss(small_params, x, n)
        # level 1: f/(2 x1) + C1 x1/(2 x1)
        assert loss[0] == pytest.approx(f / 20.0 + c[0] / 2.0)
        # level 3: f/(2 x3) + (C1 x1 + C2 x2 + C3 x3) / (2 x3)
        expected3 = f / 4.0 + (c[0] * 10 + c[1] * 5 + c[2] * 2) / 4.0
        assert loss[2] == pytest.approx(expected3)

    def test_higher_levels_lose_more(self, small_params):
        """With equal intervals, higher-level rollbacks cost at least as much
        (they waste all lower-level checkpoints too)."""
        x = np.full(4, 8.0)
        loss = expected_rollback_loss(small_params, x, 500.0)
        assert np.all(np.diff(loss) >= 0)

    def test_validation(self, small_params):
        with pytest.raises(ValueError):
            expected_rollback_loss(small_params, [1.0, 1.0], 10.0)
        with pytest.raises(ValueError):
            expected_rollback_loss(small_params, [0.0, 1.0, 1.0, 1.0], 10.0)
        with pytest.raises(ValueError):
            expected_rollback_loss(small_params, [1.0] * 4, -5.0)


class TestExpectedWallclock:
    def test_zero_failures_reduces_to_base(self, small_params):
        x = np.array([10.0, 5.0, 3.0, 2.0])
        n = 800.0
        e = expected_wallclock(small_params, x, n, mu=np.zeros(4))
        f = small_params.productive_time(n)
        c = small_params.costs.checkpoint_costs(n)
        assert e == pytest.approx(f + float(np.sum(c * (x - 1))))

    def test_linear_in_mu(self, small_params):
        x = np.array([10.0, 5.0, 3.0, 2.0])
        n = 800.0
        e0 = expected_wallclock(small_params, x, n, mu=np.zeros(4))
        e1 = expected_wallclock(small_params, x, n, mu=np.ones(4))
        e2 = expected_wallclock(small_params, x, n, mu=2 * np.ones(4))
        assert e2 - e1 == pytest.approx(e1 - e0)

    def test_negative_mu_rejected(self, small_params):
        with pytest.raises(ValueError):
            expected_wallclock(small_params, [1.0] * 4, 10.0, mu=[-1.0, 0, 0, 0])


class TestSelfConsistent:
    def test_fixed_point_property(self, small_params):
        """E solves E = base + sum mu_i(E) * loss_i exactly."""
        x = np.array([20.0, 10.0, 5.0, 3.0])
        n = 1_000.0
        e, mu = self_consistent_wallclock(small_params, x, n)
        e_check = expected_wallclock(small_params, x, n, mu=mu)
        assert e == pytest.approx(e_check, rel=1e-12)
        lam = small_params.rates.rates_per_second(n)
        assert np.allclose(mu, lam * e)

    def test_infeasible_raises(self, small_params):
        """Absurdly slow recovery makes expected loss exceed 1."""
        from dataclasses import replace

        hostile = replace(
            small_params,
            costs=LevelCostModel.from_constants(
                [1.0, 2.5, 4.0, 12.0], [1e6, 1e6, 1e6, 1e6]
            ),
        )
        with pytest.raises(ValueError, match="cannot complete"):
            self_consistent_wallclock(hostile, [10.0] * 4, 1_500.0)


class TestSingleLevel:
    def test_formula_13_by_hand(self, single_level_params):
        p = single_level_params
        x, n, mu = 50.0, 4_000.0, 10.0
        f = p.productive_time(n)
        expected = f + 10.0 * (x - 1) + mu * (f / (2 * x) + 10.0 + 20.0)
        assert single_level_wallclock(p, x, n, mu=mu) == pytest.approx(expected)

    def test_multilevel_params_rejected(self, small_params):
        with pytest.raises(ValueError, match="1-level"):
            single_level_wallclock(small_params, 10.0, 100.0, mu=1.0)

    def test_self_consistent_mode(self, single_level_params):
        e = single_level_wallclock(single_level_params, 50.0, 4_000.0)
        lam = float(single_level_params.rates.rates_per_second(4_000.0)[0])
        mu = lam * e
        assert single_level_wallclock(
            single_level_params, 50.0, 4_000.0, mu=mu
        ) == pytest.approx(e, rel=1e-12)


class TestTimePortions:
    def test_portions_sum_to_wallclock(self, small_params):
        x = np.array([20.0, 10.0, 5.0, 3.0])
        n = 1_200.0
        portions = time_portions(small_params, x, n)
        total = (
            portions["productive"]
            + portions["checkpoint"]
            + portions["restart"]
            + portions["rollback"]
        )
        assert portions["wallclock"] == pytest.approx(total)
        e, _ = self_consistent_wallclock(small_params, x, n)
        assert portions["wallclock"] == pytest.approx(e)

    def test_explicit_mu(self, small_params):
        portions = time_portions(
            small_params, [10.0] * 4, 500.0, mu=np.zeros(4)
        )
        assert portions["restart"] == 0.0
        assert portions["rollback"] == 0.0


class TestGradients:
    """Formulas (23)/(24) must match finite differences of Formula (21)."""

    def _setup(self, small_params):
        b = small_params.failure_slope(5 * 86_400.0)
        x = np.array([30.0, 12.0, 6.0, 4.0])
        n = 900.0
        return x, n, b

    def test_gradient_x_matches_finite_difference(self, small_params):
        x, n, b = self._setup(small_params)
        grad = wallclock_gradient_x(small_params, x, n, b)
        h = 1e-4
        for i in range(4):
            xp, xm = x.copy(), x.copy()
            xp[i] += h
            xm[i] -= h
            fd = (
                expected_wallclock(small_params, xp, n, b * n)
                - expected_wallclock(small_params, xm, n, b * n)
            ) / (2 * h)
            assert grad[i] == pytest.approx(fd, rel=1e-5, abs=1e-8)

    def test_gradient_n_matches_finite_difference(self, small_params):
        x, n, b = self._setup(small_params)
        grad = wallclock_gradient_n(small_params, x, n, b)
        h = 1e-3
        fd = (
            expected_wallclock(small_params, x, n + h, b * (n + h))
            - expected_wallclock(small_params, x, n - h, b * (n - h))
        ) / (2 * h)
        assert grad == pytest.approx(fd, rel=1e-5)

    def test_gradient_n_with_scale_dependent_costs(self, paper_params):
        """The PFS level's linear cost exercises the C'(N) terms."""
        b = paper_params.failure_slope(40 * 86_400.0)
        x = np.array([10_000.0, 5_000.0, 2_000.0, 100.0])
        n = 400_000.0
        grad = wallclock_gradient_n(paper_params, x, n, b)
        h = 1.0
        fd = (
            expected_wallclock(paper_params, x, n + h, b * (n + h))
            - expected_wallclock(paper_params, x, n - h, b * (n - h))
        ) / (2 * h)
        assert grad == pytest.approx(fd, rel=1e-4)


@settings(max_examples=20, deadline=None)
@given(
    x_scale=st.floats(min_value=2.0, max_value=500.0),
    n_frac=st.floats(min_value=0.05, max_value=0.95),
)
def test_objective_convex_in_each_x_direction(x_scale, n_frac):
    """Under frozen mu (mu = b N), E(T_w) is convex in each x_i: the
    analytic stationary point from Formula (23) is a minimum."""
    params = ModelParameters.from_core_days(
        100.0,
        speedup=QuadraticSpeedup(0.5, 2_000.0),
        costs=LevelCostModel.from_constants([1.0, 4.0]),
        rates=FailureRates((10.0, 5.0), baseline_scale=2_000.0),
        allocation_period=10.0,
    )
    b = params.failure_slope(2 * 86_400.0)
    n = n_frac * 2_000.0
    x = np.array([x_scale, x_scale / 2.0])
    e_mid = expected_wallclock(params, x, n, b * n)
    for i in range(2):
        xp, xm = x.copy(), x.copy()
        xp[i] *= 1.01
        xm[i] *= 0.99
        e_p = expected_wallclock(params, xp, n, b * n)
        e_m = expected_wallclock(params, xm, n, b * n)
        # discrete convexity along coordinate i
        assert e_p + e_m >= 2 * e_mid - 1e-9 * abs(e_mid)
