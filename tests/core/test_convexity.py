"""Tests for the Section III-A non-convexity analysis."""

import numpy as np
import pytest

from repro.core.convexity import hessian_2d, is_locally_convex, nonconvexity_witness
from repro.core.wallclock import expected_wallclock


class TestHessianProbe:
    def test_quadratic_bowl(self):
        h = hessian_2d(lambda x, y: x**2 + 3 * y**2, (1.0, 1.0))
        assert h[0, 0] == pytest.approx(2.0, rel=1e-3)
        assert h[1, 1] == pytest.approx(6.0, rel=1e-3)
        assert abs(h[0, 1]) < 1e-3

    def test_cross_term(self):
        h = hessian_2d(lambda x, y: x * y, (2.0, 3.0))
        assert h[0, 1] == pytest.approx(1.0, rel=1e-3)

    def test_saddle_detected(self):
        assert not is_locally_convex(lambda x, y: x**2 - y**2, (1.0, 1.0))

    def test_bowl_is_convex(self):
        assert is_locally_convex(lambda x, y: x**2 + y**2, (0.5, 0.5))


class TestPaperClaims:
    def test_self_consistent_objective_has_nonconvex_point(self, paper_params):
        """Section III-A: 'they are actually lower than 0 in some
        situations' — a witness exists for the paper's configuration."""
        witness = nonconvexity_witness(paper_params.single_level())
        assert witness is not None
        x0, n0 = witness
        assert x0 > 0 and 0 < n0 < paper_params.scale_upper_bound

    def test_frozen_mu_objective_locally_convex(self, small_params):
        """Algorithm 1's inner problem (mu frozen at b*N) is convex at
        representative points — the property the method exploits."""
        b = small_params.failure_slope(5 * 86_400.0)

        def objective(x, n):
            x_vec = np.array([x, x / 2.0, x / 4.0, x / 8.0])
            return expected_wallclock(small_params, x_vec, n, b * n)

        for x0 in (16.0, 64.0, 256.0):
            for n0 in (400.0, 1_000.0, 1_600.0):
                assert is_locally_convex(
                    objective, (x0, n0), rel_step=1e-3, tol=1e-8
                ), (x0, n0)

    def test_multilevel_params_rejected(self, small_params):
        with pytest.raises(ValueError, match="single-level"):
            nonconvexity_witness(small_params)
