"""Tests for ModelParameters and Solution."""

import math

import pytest

from repro.core.notation import ModelParameters, Solution
from repro.costs.model import LevelCostModel
from repro.failures.rates import FailureRates
from repro.speedup.linear import LinearSpeedup
from repro.speedup.quadratic import QuadraticSpeedup


class TestModelParameters:
    def test_level_counts_must_agree(self):
        with pytest.raises(ValueError, match="levels"):
            ModelParameters(
                te_core_seconds=1e6,
                speedup=QuadraticSpeedup(0.5, 1e4),
                costs=LevelCostModel.from_constants([1.0, 2.0]),
                rates=FailureRates((1.0, 2.0, 3.0), baseline_scale=1e4),
            )

    def test_linear_speedup_requires_explicit_cap(self):
        with pytest.raises(ValueError, match="max_scale"):
            ModelParameters(
                te_core_seconds=1e6,
                speedup=LinearSpeedup(0.5),
                costs=LevelCostModel.from_constants([1.0]),
                rates=FailureRates((1.0,), baseline_scale=1e4),
            )

    def test_scale_upper_bound_is_min_of_caps(self):
        params = ModelParameters(
            te_core_seconds=1e6,
            speedup=QuadraticSpeedup(0.5, 1e4),
            costs=LevelCostModel.from_constants([1.0]),
            rates=FailureRates((1.0,), baseline_scale=1e4),
            max_scale=5e3,
        )
        assert params.scale_upper_bound == 5e3

    def test_from_core_days(self, small_params):
        assert small_params.te_core_seconds == pytest.approx(200.0 * 86_400.0)

    def test_failure_slope_is_per_core(self, small_params):
        b = small_params.failure_slope(86_400.0)
        # level-1 rate 24/day at 2000 cores -> per core per day = 0.012
        assert b[0] == pytest.approx(24.0 / 2_000.0)

    def test_single_level_collapse(self, small_params):
        sl = small_params.single_level()
        assert sl.num_levels == 1
        # total failure rate routed to the top level
        assert sl.rates.per_day_at_baseline[0] == pytest.approx(45.0)
        # top-level costs kept
        assert sl.costs.checkpoint_costs(10.0)[0] == pytest.approx(12.0)

    def test_productive_time(self, small_params):
        n = 1_000.0
        g = float(small_params.speedup.speedup(n))
        assert small_params.productive_time(n) == pytest.approx(
            small_params.te_core_seconds / g
        )


class TestSolution:
    def _solution(self, **kwargs):
        defaults = dict(
            intervals=(10.0, 5.0),
            scale=100.0,
            expected_wallclock=1_000.0,
            mu=(2.0, 1.0),
        )
        defaults.update(kwargs)
        return Solution(**defaults)

    def test_rounding(self):
        sol = self._solution(intervals=(10.6, 0.4), scale=99.5)
        assert sol.intervals_rounded() == (11, 1)  # floor at 1
        assert sol.scale_rounded() == 100

    def test_efficiency(self):
        sol = self._solution()
        # (te / wallclock) / n
        assert sol.efficiency(50_000.0) == pytest.approx(0.5)

    def test_infeasible_solution(self):
        sol = self._solution(expected_wallclock=math.inf)
        assert not sol.feasible
        assert sol.efficiency(1e6) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            self._solution(intervals=())
        with pytest.raises(ValueError):
            self._solution(intervals=(0.0, 1.0))
        with pytest.raises(ValueError):
            self._solution(scale=-1.0)
        with pytest.raises(ValueError):
            self._solution(mu=(1.0,))
