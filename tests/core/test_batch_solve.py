"""Batch-vs-scalar equivalence: the bit-identity contract of batch_solve.

The vectorized sweep solver must return *exactly* what looping the scalar
:func:`repro.core.algorithm1.optimize` returns — same ``Algorithm1Result``
fields, same convergence traces, same `FixedPointDiverged` payloads, same
``SolverCache`` counters, same replayed span trees — across the behaviour
matrix: every iterative strategy, N-grid edges, warm starts, max-iteration
cutoffs, and scripted divergence.  Every assertion on results is strict
equality (dataclass ``__eq__`` compares the floats directly), not approx.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import batch_solve
from repro.core.algorithm1 import Algorithm1Result, optimize
from repro.core.batch_solve import (
    BATCH_SOLVE_ENV_VAR,
    BatchSolver,
    batch_compare_all_strategies,
    batch_optimize,
    resolve_batch_solve,
    sweep_scales,
)
from repro.core.jin import solve_jin_single_level
from repro.core.memo import SOLVER_CACHE
from repro.core.solutions import compare_all_strategies
from repro.costs.model import CostModel, LevelCostModel
from repro.costs.scaling import ScalingBaseline
from repro.experiments.config import make_params
from repro.obs.spans import (
    SpanRecorder,
    recording,
    span,
    span_tree_signature,
)
from repro.util.iteration import FixedPointDiverged


@pytest.fixture(autouse=True)
def clean_cache():
    SOLVER_CACHE.clear()
    yield
    SOLVER_CACHE.clear()


def fast_params(case="24-12-6-3", **kwargs):
    kwargs.setdefault("ideal_scale", 2000)
    kwargs.setdefault("allocation_period", 30)
    return make_params(200, case, **kwargs)


#: (name, params, optimize kwargs) covering the behaviour matrix.  The
#: N-grid edges pin ``max_scale`` at / below / far above the ideal scale;
#: ``fixed_scale`` rows exercise the ML(ori-scale) pinned path; the
#: ``inner_kwargs`` rows drive the Jacobi sweep and a tight sweep budget.
def _matrix():
    base = fast_params()
    harsh = fast_params("96-48-24-12")
    rows = [
        ("ml-opt", base, {}),
        ("ml-ori", base, dict(fixed_scale=base.scale_upper_bound,
                              strategy_name="ml-ori-scale")),
        ("harsh-rates", harsh, {}),
        ("grid-low", replace(base, max_scale=300.0), {}),
        ("grid-ideal", replace(base, max_scale=2000.0), {}),
        ("grid-above-ideal", replace(base, max_scale=50_000.0), {}),
        ("jacobi", base, dict(inner_kwargs=dict(gauss_seidel=False))),
        ("inner-n0", base, dict(inner_kwargs=dict(n0=700.0))),
        ("loose-delta", base, dict(delta=1e-6)),
        ("single-level", base.single_level(), {}),
        ("paper-scale", make_params(3e6, "8-4-2-1"), {}),
    ]
    return rows


MATRIX = _matrix()
MATRIX_IDS = [name for name, _, _ in MATRIX]


class TestBatchOptimize:
    @pytest.mark.parametrize("name,params,kwargs", MATRIX, ids=MATRIX_IDS)
    def test_bit_identical_to_scalar(self, name, params, kwargs):
        scalar = optimize(params, **kwargs)
        SOLVER_CACHE.clear()
        [batch] = batch_optimize([params], [kwargs])
        assert batch == scalar

    def test_whole_matrix_in_one_kernel_pass(self):
        plist = [p for _, p, _ in MATRIX]
        kwlist = [kw for _, _, kw in MATRIX]
        scalar = [optimize(p, **kw) for p, kw in zip(plist, kwlist)]
        stats_scalar = SOLVER_CACHE.stats()
        SOLVER_CACHE.clear()
        solver = BatchSolver()
        handles = [solver.add_optimize(p, **kw)
                   for p, kw in zip(plist, kwlist)]
        # Every matrix row is kernel-eligible: none may fall back.
        assert solver.kernel_lanes == len(MATRIX)
        solver.solve()
        batch = [solver.finish(h) for h in handles]
        assert batch == scalar
        assert SOLVER_CACHE.stats() == stats_scalar

    def test_duplicate_keys_coalesce_like_scalar(self):
        p = fast_params()
        scalar = [optimize(p), optimize(p), optimize(p)]
        stats_scalar = SOLVER_CACHE.stats()
        SOLVER_CACHE.clear()
        batch = batch_optimize([p, p, p])
        assert batch == scalar
        assert SOLVER_CACHE.stats() == stats_scalar
        assert SOLVER_CACHE.stats().misses == 1

    def test_kwargs_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="kwargs"):
            batch_optimize([fast_params()], [{}, {}])

    def test_batch_false_uses_scalar_path(self):
        p = fast_params()
        solver = BatchSolver(batch=False)
        h = solver.add_optimize(p)
        assert solver.kernel_lanes == 0
        solver.solve()
        assert solver.finish(h) == optimize(p)


class TestDivergence:
    def test_outer_cutoff_matches_scalar(self, small_params):
        with pytest.raises(FixedPointDiverged) as scalar_exc:
            optimize(small_params, max_outer=2)
        SOLVER_CACHE.clear()
        with pytest.raises(FixedPointDiverged) as batch_exc:
            batch_optimize([small_params], [dict(max_outer=2)])
        assert str(batch_exc.value) == str(scalar_exc.value)
        assert batch_exc.value.trace == scalar_exc.value.trace
        assert batch_exc.value.history == scalar_exc.value.history
        assert np.array_equal(
            batch_exc.value.last_value, scalar_exc.value.last_value
        )

    def test_inner_cutoff_matches_scalar(self, small_params):
        kw = dict(inner_kwargs=dict(max_iter=1))
        with pytest.raises(FixedPointDiverged) as scalar_exc:
            optimize(small_params, **kw)
        SOLVER_CACHE.clear()
        with pytest.raises(FixedPointDiverged) as batch_exc:
            batch_optimize([small_params], [kw])
        assert str(batch_exc.value) == str(scalar_exc.value)
        x_s, n_s = scalar_exc.value.last_value
        x_b, n_b = batch_exc.value.last_value
        assert np.array_equal(x_s, x_b, equal_nan=True)
        assert n_s == n_b

    def test_divergent_lane_does_not_poison_converged_lanes(self):
        p = fast_params()
        good = optimize(p)
        SOLVER_CACHE.clear()
        results = batch_optimize(
            [p, p, p],
            [{}, dict(max_outer=1), dict(inner_kwargs=dict(max_iter=1))],
            return_exceptions=True,
        )
        assert results[0] == good
        assert isinstance(results[1], FixedPointDiverged)
        assert isinstance(results[2], FixedPointDiverged)

    def test_errors_are_never_cached(self):
        p = fast_params()
        with pytest.raises(FixedPointDiverged):
            batch_optimize([p], [dict(max_outer=1)])
        assert SOLVER_CACHE.stats().size == 0


class TestStrategies:
    def test_compare_all_matches_scalar(self):
        plist = [fast_params(), fast_params("16-12-8-4")]
        scalar = [compare_all_strategies(p) for p in plist]
        stats_scalar = SOLVER_CACHE.stats()
        SOLVER_CACHE.clear()
        batch = batch_compare_all_strategies(plist)
        assert batch == scalar
        assert SOLVER_CACHE.stats() == stats_scalar

    def test_jin_matches_scalar(self):
        p = fast_params()
        scalar = solve_jin_single_level(p)
        stats_scalar = SOLVER_CACHE.stats()
        SOLVER_CACHE.clear()
        solver = BatchSolver()
        h = solver.add_jin(p)
        solver.solve()
        assert solver.finish(h) == scalar
        assert SOLVER_CACHE.stats() == stats_scalar

    def test_jin_reuses_cached_nested_optimize(self):
        """A jin solve whose collapsed optimize is already cached must hit
        it exactly like the scalar nested call would."""
        p = fast_params()
        scalar = solve_jin_single_level(p)
        stats_warm = SOLVER_CACHE.stats()
        solver = BatchSolver()
        h = solver.add_jin(p)
        assert solver.kernel_lanes == 0  # both keys resolved at setup
        solver.solve()
        assert solver.finish(h) == scalar
        after = SOLVER_CACHE.stats()
        assert after.hits == stats_warm.hits + 1
        assert after.misses == stats_warm.misses


class TestWarmStart:
    GRID = tuple(np.linspace(400.0, 2000.0, 9))

    def test_scalar_warm_start_drops_iterations(self):
        base = fast_params("96-48-24-12")
        cold_total, warm_total = 0, 0
        warm_wallclock = None
        for n in self.GRID:
            p = replace(base, max_scale=float(n))
            cold = optimize(p)
            kw = {}
            if warm_wallclock is not None:
                kw["warm_wallclock"] = warm_wallclock
            warm = optimize(p, **kw)
            cold_total += cold.outer_iterations
            warm_total += warm.outer_iterations
            warm_wallclock = warm.solution.expected_wallclock
            # Same fixed point, shorter trajectory.
            assert warm.solution.scale == pytest.approx(
                cold.solution.scale, rel=1e-9
            )
            assert warm.solution.expected_wallclock == pytest.approx(
                cold.solution.expected_wallclock, rel=1e-9
            )
        assert warm_total < cold_total

    def test_sweep_scales_batch_matches_scalar_warm_chain(self):
        base = fast_params("96-48-24-12")
        scalar, prev = [], None
        for n in self.GRID:
            p = replace(base, max_scale=float(n))
            kw = {}
            if prev is not None:
                kw["warm_wallclock"] = prev.solution.expected_wallclock
            prev = optimize(p, **kw)
            scalar.append(prev)
        SOLVER_CACHE.clear()
        batch = sweep_scales([base], self.GRID, warm_start=True)
        assert [step[0] for step in batch] == scalar

    def test_sweep_scales_warm_start_drops_iterations(self):
        base = fast_params("96-48-24-12")
        cold = sweep_scales([base], self.GRID, warm_start=False)
        SOLVER_CACHE.clear()
        warm = sweep_scales([base], self.GRID, warm_start=True)
        assert (
            sum(s[0].outer_iterations for s in warm)
            < sum(s[0].outer_iterations for s in cold)
        )

    def test_sweep_scales_divergent_config_restarts_cold(self):
        """A lane that diverged at the previous grid point re-seeds cold
        (no warm_wallclock) instead of poisoning the next solve."""
        base = fast_params()
        results = sweep_scales(
            [base], [800.0, 1600.0], warm_start=True,
            return_exceptions=True, max_outer=1,
        )
        assert all(
            isinstance(r, FixedPointDiverged)
            for step in results for r in step
        )
        # Step 2 ran cold: its divergence payload is exactly the scalar
        # cold solve's, not a warm-seeded variant.
        SOLVER_CACHE.clear()
        with pytest.raises(FixedPointDiverged) as cold_exc:
            optimize(replace(base, max_scale=1600.0), max_outer=1)
        assert str(results[1][0]) == str(cold_exc.value)
        assert results[1][0].trace == cold_exc.value.trace

    def test_invalid_warm_wallclock_rejected(self):
        with pytest.raises(ValueError, match="warm_wallclock"):
            optimize(fast_params(), warm_wallclock=0.0)


class TestTelemetryReplay:
    TRACE_ID = "ab" * 16

    def _capture(self, fn):
        recorder = SpanRecorder()
        with recording(recorder):
            with span("test.root", trace_id=self.TRACE_ID):
                try:
                    fn()
                except FixedPointDiverged:
                    pass
        return recorder.spans

    def test_success_span_tree_bit_identical(self):
        p = fast_params()
        scalar = self._capture(lambda: optimize(p))
        SOLVER_CACHE.clear()
        batch = self._capture(lambda: batch_optimize([p]))
        assert span_tree_signature(batch) == span_tree_signature(scalar)

    def test_outer_divergence_span_tree_bit_identical(self):
        p = fast_params()
        scalar = self._capture(lambda: optimize(p, max_outer=1))
        SOLVER_CACHE.clear()
        batch = self._capture(
            lambda: batch_optimize([p], [dict(max_outer=1)])
        )
        assert span_tree_signature(batch) == span_tree_signature(scalar)

    def test_inner_divergence_span_tree_bit_identical(self):
        p = fast_params()
        kw = dict(inner_kwargs=dict(max_iter=1))
        scalar = self._capture(lambda: optimize(p, **kw))
        SOLVER_CACHE.clear()
        batch = self._capture(lambda: batch_optimize([p], [kw]))
        assert span_tree_signature(batch) == span_tree_signature(scalar)

    def test_cache_hits_replay_nothing(self):
        """A batch resolved entirely from cache emits no solver spans,
        exactly like the scalar memoized hit."""
        p = fast_params()
        optimize(p)
        spans = self._capture(lambda: batch_optimize([p]))
        assert [s.name for s in spans] == ["test.root"]


class TestFallback:
    def test_adhoc_baseline_falls_back_transparently(self):
        """A custom scaling baseline the kernel doesn't cover must route
        through the scalar path and return its exact result."""
        cube = ScalingBaseline(
            name="cube",
            func=lambda n: np.asarray(n, dtype=float) ** 3 / 1e6,
            deriv=lambda n: 3.0 * np.asarray(n, dtype=float) ** 2 / 1e6,
        )
        base = fast_params()
        checkpoint = list(base.costs.checkpoint)
        checkpoint[-1] = CostModel(
            constant=checkpoint[-1].constant, coefficient=1e-4, baseline=cube
        )
        costs = LevelCostModel(
            checkpoint=tuple(checkpoint), recovery=base.costs.recovery
        )
        p = replace(base, costs=costs)
        scalar = optimize(p)
        SOLVER_CACHE.clear()
        solver = BatchSolver()
        h = solver.add_optimize(p)
        assert solver.kernel_lanes == 0
        solver.solve()
        assert solver.finish(h) == scalar

    def test_unknown_kwargs_fall_back(self):
        p = fast_params()
        solver = BatchSolver()
        # inner tolerance overrides are kernel-supported; a bogus kwarg
        # must not be silently dropped — it routes to scalar and raises
        # exactly what the scalar wrapper raises.
        with pytest.raises(TypeError):
            solver.add_optimize(p, bogus_option=1)
            solver.solve()
            solver.finish(0)

    def test_subclassed_speedup_falls_back(self):
        from repro.speedup.quadratic import QuadraticSpeedup

        class Tweaked(QuadraticSpeedup):
            pass

        p = fast_params()
        tweaked = replace(
            p, speedup=Tweaked(kappa=0.5, ideal_scale=2_000.0)
        )
        scalar = optimize(tweaked)
        SOLVER_CACHE.clear()
        solver = BatchSolver()
        h = solver.add_optimize(tweaked)
        assert solver.kernel_lanes == 0
        solver.solve()
        assert solver.finish(h) == scalar

    def test_env_default_resolution(self, monkeypatch):
        monkeypatch.delenv(BATCH_SOLVE_ENV_VAR, raising=False)
        assert resolve_batch_solve() is True
        assert resolve_batch_solve(False) is False
        assert resolve_batch_solve(True) is True
        for text in ("0", "false", "off", "no", " OFF "):
            monkeypatch.setenv(BATCH_SOLVE_ENV_VAR, text)
            assert resolve_batch_solve() is False
        monkeypatch.setenv(BATCH_SOLVE_ENV_VAR, "1")
        assert resolve_batch_solve() is True
        # Explicit argument beats the environment.
        monkeypatch.setenv(BATCH_SOLVE_ENV_VAR, "0")
        assert resolve_batch_solve(True) is True
