"""Tests for Algorithm 1 (outer mu-iteration)."""

import numpy as np
import pytest

from repro.core.algorithm1 import optimize
from repro.core.wallclock import self_consistent_wallclock
from repro.util.iteration import FixedPointDiverged


class TestConvergence:
    def test_converges_on_small_config(self, small_params):
        result = optimize(small_params)
        assert result.outer_iterations < 60
        assert result.solution.expected_wallclock > 0

    def test_mu_self_consistent_at_solution(self, small_params):
        """At convergence, mu_i = lambda_i(N*) * E(T_w) holds."""
        result = optimize(small_params)
        sol = result.solution
        lam = small_params.rates.rates_per_second(sol.scale)
        expected_mu = lam * sol.expected_wallclock
        assert np.allclose(sol.mu, expected_mu, rtol=1e-6)

    def test_solution_is_self_consistent_optimum(self, small_params):
        """The converged point evaluates identically under the exact
        self-consistent wall-clock formula."""
        result = optimize(small_params)
        sol = result.solution
        e, _ = self_consistent_wallclock(
            small_params, np.asarray(sol.intervals), sol.scale
        )
        assert e == pytest.approx(sol.expected_wallclock, rel=1e-6)

    def test_mu_history_recorded(self, small_params):
        result = optimize(small_params)
        assert len(result.mu_history) == result.outer_iterations + 1
        assert all(len(mu) == 4 for mu in result.mu_history)

    def test_paper_iteration_envelope(self, paper_params):
        """The paper reports 7-15 outer iterations at delta = 1e-12 on the
        evaluation configs; allow a 4x envelope for our variant."""
        result = optimize(paper_params, delta=1e-12)
        assert 2 <= result.outer_iterations <= 60


class TestFixedScale:
    def test_fixed_scale_respected(self, small_params):
        result = optimize(small_params, fixed_scale=1_800.0)
        assert result.solution.scale == 1_800.0

    def test_free_no_worse_than_fixed(self, small_params):
        free = optimize(small_params).solution
        fixed = optimize(
            small_params, fixed_scale=small_params.scale_upper_bound
        ).solution
        assert free.expected_wallclock <= fixed.expected_wallclock * (1 + 1e-9)


class TestDivergence:
    def test_extreme_rates_raise(self, small_params):
        """Unrealistically high failure rates are the paper's stated
        non-convergence regime; we surface it as an exception."""
        from dataclasses import replace
        from repro.failures.rates import FailureRates

        hostile = replace(
            small_params,
            rates=FailureRates(
                (5e4, 4e4, 3e4, 2e4), baseline_scale=2_000.0
            ),
        )
        with pytest.raises((FixedPointDiverged, ValueError)):
            optimize(hostile, max_outer=40)

    def test_bad_delta_rejected(self, small_params):
        with pytest.raises(ValueError):
            optimize(small_params, delta=0.0)


class TestStrategyMetadata:
    def test_strategy_name_propagated(self, small_params):
        result = optimize(small_params, strategy_name="custom")
        assert result.solution.strategy == "custom"
        assert result.solution.outer_iterations == result.outer_iterations
