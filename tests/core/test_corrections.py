"""Tests for the retry-aware correction."""

import math

import numpy as np
import pytest

from repro.core.algorithm1 import optimize
from repro.core.corrections import (
    RetryAwareCost,
    corrected_parameters,
    corrected_wallclock,
    effective_cost,
)
from repro.core.wallclock import self_consistent_wallclock
from repro.sim.runner import simulate_solution


class TestEffectiveCost:
    def test_no_failures_identity(self):
        assert effective_cost(10.0, 0.0) == 10.0
        assert effective_cost(0.0, 1.0) == 0.0

    def test_small_rate_first_order(self):
        """For Lambda*c << 1: c_eff ~ c (1 + Lambda c / 2)."""
        c, lam = 10.0, 1e-4
        expected = c * (1 + lam * c / 2)
        assert effective_cost(c, lam) == pytest.approx(expected, rel=1e-3)

    def test_explosive_growth_near_mtbf(self):
        """c ~ 1/Lambda multiplies the effective cost by (e-1)."""
        lam = 1e-3
        c = 1_000.0  # exactly the MTBF
        assert effective_cost(c, lam) == pytest.approx(
            (math.e - 1) * 1_000.0 / 1.0, rel=1e-6
        )

    def test_overflow_reported_as_inf(self):
        assert math.isinf(effective_cost(1e6, 1e-2))

    def test_monotone_in_both_arguments(self):
        assert effective_cost(20.0, 1e-3) > effective_cost(10.0, 1e-3)
        assert effective_cost(10.0, 2e-3) > effective_cost(10.0, 1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            effective_cost(-1.0, 1.0)
        with pytest.raises(ValueError):
            effective_cost(1.0, -1.0)

    def test_matches_simulated_retry_count(self):
        """Monte-Carlo check of the closed form: restart-on-interrupt."""
        rng = np.random.default_rng(0)
        lam, c = 1e-3, 800.0
        total = 0.0
        trials = 4_000
        for _ in range(trials):
            while True:
                gap = rng.exponential(1.0 / lam)
                if gap >= c:
                    total += c
                    break
                total += gap
        assert total / trials == pytest.approx(
            effective_cost(c, lam), rel=0.05
        )


class TestRetryAwareCost:
    def test_wraps_base_cost(self, paper_params):
        base = paper_params.costs.checkpoint[3]  # the PFS level
        wrapped = RetryAwareCost(base, paper_params)
        n = 500_000.0
        assert wrapped(n) > float(base(n))
        assert not wrapped.is_constant()

    def test_derivative_positive(self, paper_params):
        wrapped = RetryAwareCost(paper_params.costs.checkpoint[3], paper_params)
        assert wrapped.derivative(400_000.0) > 0

    def test_vector_evaluation(self, paper_params):
        wrapped = RetryAwareCost(paper_params.costs.checkpoint[0], paper_params)
        out = wrapped(np.array([1e5, 5e5]))
        assert out.shape == (2,)
        assert out[1] > out[0]  # rate grows with N


class TestCorrectedModel:
    def test_correction_increases_prediction(self, paper_params):
        from repro.core.solutions import ml_opt_scale

        sol = ml_opt_scale(paper_params)
        plain, _ = self_consistent_wallclock(
            paper_params, np.asarray(sol.intervals), sol.scale
        )
        corrected, _ = corrected_wallclock(
            paper_params, np.asarray(sol.intervals), sol.scale
        )
        assert corrected > plain

    def test_bracketing_property(self, paper_params):
        """The headline property: the first-order model lower-bounds the
        simulated mean (no retries) and the corrected model upper-bounds it
        (every retry restarts from scratch; the simulator usually resumes
        from a nearby lower-level checkpoint)."""
        from repro.core.solutions import ml_opt_scale

        sol = ml_opt_scale(paper_params)
        ens = simulate_solution(paper_params, sol, n_runs=15, seed=3)
        plain, _ = self_consistent_wallclock(
            paper_params, np.asarray(sol.intervals), sol.scale
        )
        corrected, _ = corrected_wallclock(
            paper_params, np.asarray(sol.intervals), sol.scale
        )
        assert plain <= ens.mean_wallclock * 1.02
        assert ens.mean_wallclock <= corrected * 1.05

    def test_corrected_optimizer_runs_unchanged(self, paper_params):
        """The whole Algorithm 1 stack accepts corrected parameters."""
        corrected = corrected_parameters(paper_params)
        solution = optimize(corrected).solution
        assert 0 < solution.scale < paper_params.scale_upper_bound

    def test_corrected_optimizer_beats_plain_under_simulation(
        self, paper_params
    ):
        """Optimizing against the corrected objective yields a configuration
        that simulates at least as fast as the first-order optimum."""
        plain_sol = optimize(paper_params).solution
        corr_sol = optimize(corrected_parameters(paper_params)).solution
        plain_sim = simulate_solution(
            paper_params, plain_sol, n_runs=15, seed=9
        ).mean_wallclock
        corr_sim = simulate_solution(
            paper_params, corr_sol, n_runs=15, seed=9
        ).mean_wallclock
        assert corr_sim <= plain_sim * 1.02
