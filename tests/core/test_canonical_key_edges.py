"""Edge-case coverage for ``canonical_key`` (repro.core.memo).

The cache key must treat *bit-identical values* as equal regardless of
their Python spelling (numpy scalar vs builtin float, dict insertion
order), must respect dataclass structure (nested fields, field order),
and must register *any* single-field mutation of a real parameter object
as a miss — these are the properties the service's coalescing and
persistent store both lean on.
"""

from __future__ import annotations

import dataclasses
from dataclasses import replace

import numpy as np
import pytest

from repro.core.memo import canonical_key
from repro.costs.model import CostModel, LevelCostModel
from repro.failures.rates import FailureRates
from repro.speedup.quadratic import QuadraticSpeedup


class TestNumericTokens:
    def test_numpy_float_equals_python_float(self):
        assert canonical_key(np.float64(0.25)) == canonical_key(0.25)

    def test_numpy_int_equals_python_int(self):
        assert canonical_key(np.int64(42)) == canonical_key(42)

    def test_float32_upcast_is_bit_exact(self):
        # np.float32(0.1) != 0.1 as doubles: the key must distinguish them.
        assert canonical_key(np.float32(0.1)) != canonical_key(0.1)
        assert canonical_key(np.float32(0.5)) == canonical_key(0.5)

    def test_negative_zero_differs_from_zero(self):
        assert canonical_key(-0.0) != canonical_key(0.0)

    def test_nan_and_inf_are_keyable_and_stable(self):
        assert canonical_key(float("nan")) == canonical_key(float("nan"))
        assert canonical_key(float("inf")) == canonical_key(float("inf"))
        assert canonical_key(float("inf")) != canonical_key(float("-inf"))

    def test_int_is_not_confused_with_float(self):
        assert canonical_key(1) != canonical_key(1.0)

    def test_bool_is_not_confused_with_int(self):
        # bool is an int subclass; both tokenize via the primitive branch,
        # and True == 1 hashes equal — guard documents this deliberately:
        # solver kwargs never mix bool/int meanings for one field.
        assert canonical_key(True) == canonical_key(True)
        assert canonical_key(True) != canonical_key(False)

    def test_nearby_floats_differ(self):
        a = 0.1
        b = np.nextafter(0.1, 1.0)
        assert canonical_key(a) != canonical_key(b)


@dataclasses.dataclass(frozen=True)
class _Inner:
    x: float
    y: tuple


@dataclasses.dataclass(frozen=True)
class _Outer:
    name: str
    inner: _Inner
    weight: float = 1.0


class TestNestedDataclasses:
    def test_equal_nested_instances_equal_keys(self):
        a = _Outer("a", _Inner(0.5, (1, 2)))
        b = _Outer("a", _Inner(0.5, (1, 2)))
        assert canonical_key(a) == canonical_key(b)

    def test_nested_field_mutation_changes_key(self):
        a = _Outer("a", _Inner(0.5, (1, 2)))
        b = _Outer("a", _Inner(0.5, (1, 3)))
        assert canonical_key(a) != canonical_key(b)

    def test_field_values_do_not_swap_across_fields(self):
        # (x=1, y=2) must not collide with (x=2, y=1): tokens carry the
        # field *names*, not just positional values.
        a = _Inner(1.0, (2.0,))
        b = _Inner(2.0, (1.0,))
        assert canonical_key(a) != canonical_key(b)

    def test_class_identity_is_part_of_the_key(self):
        @dataclasses.dataclass(frozen=True)
        class _Impostor:
            x: float
            y: tuple

        assert canonical_key(_Inner(0.5, ())) != canonical_key(_Impostor(0.5, ()))

    def test_dict_insertion_order_is_canonicalized(self):
        assert canonical_key({"a": 1, "b": 2}) == canonical_key({"b": 2, "a": 1})

    def test_numpy_array_keys_are_bit_exact(self):
        a = np.array([0.1, 0.2])
        assert canonical_key(a) == canonical_key(a.copy())
        assert canonical_key(a) != canonical_key(a.astype(np.float32))
        assert canonical_key(a) != canonical_key(a.reshape(2, 1))


class TestEveryFieldIsAMiss:
    """Any single-field mutation of real model parameters misses."""

    @pytest.fixture
    def base(self, small_params):
        return small_params

    @pytest.mark.parametrize(
        "mutate",
        [
            pytest.param(
                lambda p: replace(p, te_core_seconds=p.te_core_seconds + 1.0),
                id="te_core_seconds",
            ),
            pytest.param(
                lambda p: replace(
                    p,
                    speedup=QuadraticSpeedup(
                        kappa=0.51, ideal_scale=p.speedup.ideal_scale
                    ),
                ),
                id="speedup.kappa",
            ),
            pytest.param(
                lambda p: replace(
                    p,
                    speedup=QuadraticSpeedup(
                        kappa=0.5, ideal_scale=p.speedup.ideal_scale + 1
                    ),
                ),
                id="speedup.ideal_scale",
            ),
            pytest.param(
                lambda p: replace(
                    p,
                    costs=LevelCostModel(
                        checkpoint=p.costs.checkpoint[:-1]
                        + (CostModel.constant_cost(99.0),),
                        recovery=p.costs.recovery,
                    ),
                ),
                id="costs.checkpoint",
            ),
            pytest.param(
                lambda p: replace(
                    p,
                    costs=LevelCostModel(
                        checkpoint=p.costs.checkpoint,
                        recovery=p.costs.recovery[:-1]
                        + (CostModel.constant_cost(99.0),),
                    ),
                ),
                id="costs.recovery",
            ),
            pytest.param(
                lambda p: replace(
                    p,
                    rates=FailureRates(
                        per_day_at_baseline=(25.0, 12.0, 6.0, 3.0),
                        baseline_scale=p.rates.baseline_scale,
                    ),
                ),
                id="rates.per_day",
            ),
            pytest.param(
                lambda p: replace(
                    p,
                    rates=FailureRates(
                        per_day_at_baseline=p.rates.per_day_at_baseline,
                        baseline_scale=p.rates.baseline_scale + 1.0,
                    ),
                ),
                id="rates.baseline_scale",
            ),
            pytest.param(
                lambda p: replace(p, allocation_period=p.allocation_period + 1),
                id="allocation_period",
            ),
            pytest.param(
                lambda p: replace(p, min_scale=p.min_scale + 1.0),
                id="min_scale",
            ),
            pytest.param(
                lambda p: replace(p, max_scale=p.scale_upper_bound - 1.0),
                id="max_scale",
            ),
        ],
    )
    def test_single_field_mutation_is_a_cache_miss(self, base, mutate):
        assert canonical_key(base) != canonical_key(mutate(base))

    def test_epsilon_perturbation_is_a_miss(self, base):
        bumped = replace(
            base,
            te_core_seconds=float(
                np.nextafter(base.te_core_seconds, np.inf)
            ),
        )
        assert canonical_key(base) != canonical_key(bumped)

    def test_unmutated_copy_is_a_hit(self, base):
        assert canonical_key(base) == canonical_key(replace(base))
