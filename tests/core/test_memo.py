"""Tests for the solver memo cache (repro.core.memo)."""

from dataclasses import replace

import pytest

from repro.core.algorithm1 import optimize
from repro.core.jin import solve_jin_single_level
from repro.core.memo import SOLVER_CACHE, SolverCache, canonical_key
from repro.core.sensitivity import sensitivity_report
from repro.core.solutions import compare_all_strategies
from repro.costs.model import CostModel, LevelCostModel
from repro.failures.rates import FailureRates


@pytest.fixture(autouse=True)
def clean_cache():
    """Isolate every test from cross-test (and cross-module) cache state."""
    SOLVER_CACHE.clear()
    SOLVER_CACHE.detach_store()
    SOLVER_CACHE.set_max_entries(None)
    yield
    SOLVER_CACHE.clear()
    SOLVER_CACHE.detach_store()
    SOLVER_CACHE.set_max_entries(None)


class TestCanonicalKey:
    def test_identical_params_equal_keys(self, small_params):
        rebuilt = replace(small_params)
        assert canonical_key(small_params) == canonical_key(rebuilt)

    def test_rate_change_changes_key(self, small_params):
        changed = replace(
            small_params,
            rates=FailureRates(
                per_day_at_baseline=(24.0, 12.0, 6.0, 4.0),  # was ...3.0
                baseline_scale=small_params.rates.baseline_scale,
            ),
        )
        assert canonical_key(small_params) != canonical_key(changed)

    def test_cost_change_changes_key(self, small_params):
        changed = replace(
            small_params,
            costs=LevelCostModel(
                checkpoint=small_params.costs.checkpoint[:-1]
                + (CostModel.constant_cost(13.0),),
                recovery=small_params.costs.recovery,
            ),
        )
        assert canonical_key(small_params) != canonical_key(changed)

    def test_allocation_period_changes_key(self, small_params):
        changed = replace(small_params, allocation_period=31.0)
        assert canonical_key(small_params) != canonical_key(changed)

    def test_strategy_part_distinguishes(self, small_params):
        assert canonical_key(small_params, "ml-opt-scale") != canonical_key(
            small_params, "sl-opt-scale"
        )


class TestSolverMemoization:
    def test_hit_on_identical_parameters(self, small_params):
        first = optimize(small_params)
        before = SOLVER_CACHE.stats()
        second = optimize(replace(small_params))  # equal-valued, new object
        after = SOLVER_CACHE.stats()
        assert second is first  # shared frozen result, not a recompute
        assert after.hits == before.hits + 1
        assert after.misses == before.misses

    def test_miss_on_any_field_change(self, small_params):
        optimize(small_params)
        misses_before = SOLVER_CACHE.stats().misses
        optimize(replace(small_params, allocation_period=31.0))
        assert SOLVER_CACHE.stats().misses == misses_before + 1

    def test_kwargs_are_part_of_the_key(self, small_params):
        a = optimize(small_params)
        b = optimize(small_params, fixed_scale=small_params.scale_upper_bound)
        assert a is not b
        assert SOLVER_CACHE.stats().misses == 2

    def test_jin_and_young_cached_too(self, small_params):
        solve_jin_single_level(small_params)
        stats = SOLVER_CACHE.stats()
        solve_jin_single_level(small_params)
        assert SOLVER_CACHE.stats().hits == stats.hits + 1

    def test_compare_all_strategies_second_call_all_hits(self, small_params):
        compare_all_strategies(small_params)
        before = SOLVER_CACHE.stats()
        compare_all_strategies(small_params)
        after = SOLVER_CACHE.stats()
        assert after.misses == before.misses
        assert after.hits >= before.hits + 4  # one per strategy

    def test_clear_resets_store_and_counters(self, small_params):
        optimize(small_params)
        SOLVER_CACHE.clear()
        stats = SOLVER_CACHE.stats()
        assert (stats.hits, stats.misses, stats.size) == (0, 0, 0)
        optimize(small_params)  # recomputed after clear
        assert SOLVER_CACHE.stats().misses == 1

    def test_bypass_neither_reads_nor_writes(self, small_params):
        cached = optimize(small_params)
        stats = SOLVER_CACHE.stats()
        with SOLVER_CACHE.bypass():
            fresh = optimize(small_params)
        assert fresh is not cached  # recomputed despite the cache entry
        assert fresh == cached  # ... to the identical result
        after = SOLVER_CACHE.stats()
        assert (after.hits, after.misses, after.size) == (
            stats.hits,
            stats.misses,
            stats.size,
        )

    def test_sensitivity_sweep_does_not_pollute_cache(self, small_params):
        sensitivity_report(
            small_params,
            relative_perturbation=0.1,
            parameters=("failure_rates",),
        )
        # All solves in the sweep bypass the cache entirely.
        assert SOLVER_CACHE.stats().size == 0

    def test_stats_requests_property(self):
        cache = SolverCache()
        cache.get_or_compute("k", lambda: 1)
        cache.get_or_compute("k", lambda: 2)
        stats = cache.stats()
        assert stats.requests == 2
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)


class TestLRUBound:
    """The optional max_entries bound (long-lived service hygiene)."""

    def test_unbounded_by_default(self):
        cache = SolverCache()
        for i in range(100):
            cache.get_or_compute(i, lambda i=i: i)
        assert cache.stats().size == 100
        assert cache.stats().evictions == 0

    def test_constructor_bound_evicts_oldest(self):
        cache = SolverCache(max_entries=3)
        for i in range(5):
            cache.get_or_compute(i, lambda i=i: i)
        stats = cache.stats()
        assert stats.size == 3
        assert stats.evictions == 2
        # Newest keys (2, 3, 4) are hits; oldest (0, 1) were evicted and
        # recompute.  Probe the survivors first so the recomputes' own
        # insertions don't cascade-evict them mid-check.
        computed = []
        for i in (2, 3, 4, 0, 1):
            cache.get_or_compute(i, lambda i=i: computed.append(i))
        assert computed == [0, 1]

    def test_hit_refreshes_recency(self):
        cache = SolverCache(max_entries=2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: None)  # refresh "a"
        cache.get_or_compute("c", lambda: 3)  # evicts "b", not "a"
        recomputed = []
        cache.get_or_compute("a", lambda: recomputed.append("a"))
        cache.get_or_compute("b", lambda: recomputed.append("b"))
        assert recomputed == ["b"]

    def test_set_max_entries_applies_immediately(self):
        cache = SolverCache()
        for i in range(10):
            cache.get_or_compute(i, lambda i=i: i)
        cache.set_max_entries(4)
        assert cache.stats().size == 4
        assert cache.stats().evictions == 6
        cache.set_max_entries(None)  # unbounding keeps survivors
        assert cache.stats().size == 4

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            SolverCache(max_entries=0)
        with pytest.raises(ValueError):
            SolverCache().set_max_entries(-1)

    def test_eviction_metric_exported(self):
        from repro.obs.metrics import METRICS

        before = METRICS.counter("memo.evictions").value
        cache = SolverCache(max_entries=1)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        assert METRICS.counter("memo.evictions").value == before + 1

    def test_global_cache_bound_with_real_solves(self, small_params):
        from dataclasses import replace

        SOLVER_CACHE.set_max_entries(2)
        optimize(small_params)
        optimize(replace(small_params, allocation_period=31.0))
        optimize(replace(small_params, allocation_period=32.0))
        stats = SOLVER_CACHE.stats()
        assert stats.size == 2
        assert stats.evictions >= 1
