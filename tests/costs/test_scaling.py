"""Tests for scaling baselines H(N)."""

import numpy as np
import pytest

from repro.costs.scaling import CONSTANT, LINEAR, LOG, SQRT, ScalingBaseline, named_baseline


def test_all_pass_through_origin():
    for baseline in (CONSTANT, LINEAR, SQRT, LOG):
        assert float(baseline(0.0)) == pytest.approx(0.0, abs=1e-12)


def test_linear_values_and_derivative():
    assert float(LINEAR(1000.0)) == 1000.0
    assert float(LINEAR.derivative(123.0)) == 1.0


def test_constant_is_identically_zero():
    n = np.array([1.0, 100.0, 1e6])
    assert np.all(CONSTANT(n) == 0.0)
    assert np.all(CONSTANT.derivative(n) == 0.0)


def test_sqrt_derivative_matches_finite_difference():
    n, h = 400.0, 1e-4
    fd = (float(SQRT(n + h)) - float(SQRT(n - h))) / (2 * h)
    assert float(SQRT.derivative(n)) == pytest.approx(fd, rel=1e-6)


def test_log_derivative_matches_finite_difference():
    n, h = 50.0, 1e-5
    fd = (float(LOG(n + h)) - float(LOG(n - h))) / (2 * h)
    assert float(LOG.derivative(n)) == pytest.approx(fd, rel=1e-6)


def test_named_lookup():
    assert named_baseline("linear") is LINEAR
    assert named_baseline("constant") is CONSTANT
    with pytest.raises(ValueError, match="unknown baseline"):
        named_baseline("cubic")


def test_custom_baseline_must_pass_origin():
    with pytest.raises(ValueError, match="origin"):
        ScalingBaseline(
            name="bad", func=lambda n: np.asarray(n) + 1.0, deriv=lambda n: 1.0
        )
