"""Tests for the Table II data module."""

import numpy as np
import pytest

from repro.costs.fti_fusion import (
    FTI_FUSION_CHECKPOINT_TABLE,
    FTI_FUSION_PAPER_COEFFS,
    FTI_FUSION_SCALES,
    fti_fusion_cost_models,
    fti_fusion_paper_coefficients,
)


def test_table_shape_matches_paper():
    assert FTI_FUSION_CHECKPOINT_TABLE.shape == (5, 4)
    assert FTI_FUSION_SCALES.tolist() == [128, 256, 384, 512, 1024]


def test_table_values_spot_check():
    # Table II verbatim cells
    assert FTI_FUSION_CHECKPOINT_TABLE[0, 0] == 0.9  # 128 cores, level 1
    assert FTI_FUSION_CHECKPOINT_TABLE[4, 3] == 25.15  # 1024 cores, PFS


def test_paper_coefficient_models():
    m = fti_fusion_paper_coefficients()
    assert m.num_levels == 4
    costs = m.checkpoint_costs(1024.0)
    assert costs[0] == pytest.approx(0.866)
    assert costs[3] == pytest.approx(5.5 + 0.0212 * 1024)
    # levels 1-3 scale-independent
    assert np.array_equal(m.checkpoint_costs(128.0)[:3], costs[:3])


def test_refit_from_raw_table_close_to_paper():
    """Least squares on the raw Table II reproduces the quoted coefficients."""
    refit = fti_fusion_cost_models()
    for level, (eps, alpha) in enumerate(FTI_FUSION_PAPER_COEFFS):
        model = refit.checkpoint[level]
        if alpha == 0.0:
            assert model.is_constant()
            assert model.constant == pytest.approx(eps, rel=0.05)
        else:
            assert model.coefficient == pytest.approx(alpha, rel=0.05)
            assert model.constant == pytest.approx(eps, rel=0.25)


def test_refit_predictions_close_to_measurements():
    refit = fti_fusion_cost_models()
    predicted = np.column_stack(
        [refit.checkpoint_costs(s) for s in FTI_FUSION_SCALES]
    ).T
    # PFS column within 20% of each measurement
    rel = np.abs(predicted[:, 3] - FTI_FUSION_CHECKPOINT_TABLE[:, 3]) / (
        FTI_FUSION_CHECKPOINT_TABLE[:, 3]
    )
    assert rel.max() < 0.35
