"""Tests for CostModel and LevelCostModel (Formulas 19/20)."""

import numpy as np
import pytest

from repro.costs.model import CostModel, LevelCostModel
from repro.costs.scaling import CONSTANT, LINEAR


class TestCostModel:
    def test_constant_cost(self):
        c = CostModel.constant_cost(5.0)
        assert c(1.0) == 5.0
        assert c(1e6) == 5.0
        assert c.derivative(123.0) == 0.0
        assert c.is_constant()

    def test_linear_cost_matches_paper_pfs(self):
        # The paper's level-4 fit: 5.5 + 0.0212 N
        c = CostModel(constant=5.5, coefficient=0.0212, baseline=LINEAR)
        assert float(c(1024.0)) == pytest.approx(27.2, abs=0.1)
        assert float(c(1e6)) == pytest.approx(21_205.5)
        assert float(c.derivative(500.0)) == pytest.approx(0.0212)
        assert not c.is_constant()

    def test_negative_constant_rejected(self):
        with pytest.raises(ValueError):
            CostModel(constant=-1.0)

    def test_negative_coefficient_rejected(self):
        with pytest.raises(ValueError):
            CostModel(constant=1.0, coefficient=-0.1, baseline=LINEAR)


class TestLevelCostModel:
    def test_from_constants_default_recovery_mirrors(self):
        m = LevelCostModel.from_constants([1.0, 2.0, 4.0, 8.0])
        assert m.num_levels == 4
        assert np.array_equal(m.checkpoint_costs(99.0), m.recovery_costs(99.0))

    def test_cost_vectors(self):
        m = LevelCostModel.from_constants([1.0, 2.0], [3.0, 4.0])
        assert m.checkpoint_costs(10.0).tolist() == [1.0, 2.0]
        assert m.recovery_costs(10.0).tolist() == [3.0, 4.0]

    def test_derivative_vectors(self):
        pfs = CostModel(5.5, 0.0212, LINEAR)
        local = CostModel.constant_cost(1.0)
        m = LevelCostModel(checkpoint=(local, pfs), recovery=(local, local))
        d = m.checkpoint_derivatives(1e5)
        assert d.tolist() == [0.0, 0.0212]
        assert m.recovery_derivatives(1e5).tolist() == [0.0, 0.0]

    def test_monotone_check(self):
        good = LevelCostModel.from_constants([1.0, 2.0, 3.0])
        bad = LevelCostModel.from_constants([3.0, 1.0, 2.0])
        assert good.is_monotone_at(100.0)
        assert not bad.is_monotone_at(100.0)

    def test_single_level_keeps_top(self):
        m = LevelCostModel.from_constants([1.0, 2.0, 4.0, 8.0])
        sl = m.single_level(4)
        assert sl.num_levels == 1
        assert sl.checkpoint_costs(0.0)[0] == 8.0

    def test_single_level_bad_index(self):
        m = LevelCostModel.from_constants([1.0])
        with pytest.raises(ValueError):
            m.single_level(2)

    def test_mismatched_levels_rejected(self):
        with pytest.raises(ValueError):
            LevelCostModel(
                checkpoint=(CostModel.constant_cost(1.0),),
                recovery=(CostModel.constant_cost(1.0), CostModel.constant_cost(2.0)),
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LevelCostModel(checkpoint=(), recovery=())
