"""Tests for cost-model least-squares fitting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.costs.fitting import fit_cost_model
from repro.costs.scaling import LINEAR, SQRT


def test_exact_linear_recovery():
    scales = np.array([128.0, 256.0, 512.0, 1024.0])
    costs = 5.5 + 0.0212 * scales
    m = fit_cost_model(scales, costs, snap_threshold=0.0)
    assert m.constant == pytest.approx(5.5, abs=1e-9)
    assert m.coefficient == pytest.approx(0.0212, rel=1e-9)


def test_constant_data_snaps_to_constant():
    scales = np.array([128.0, 256.0, 512.0, 1024.0])
    costs = np.array([0.9, 0.67, 0.99, 1.1])  # Table II level-1 style jitter
    m = fit_cost_model(scales, costs)
    assert m.is_constant()
    assert m.constant == pytest.approx(float(costs.mean()), rel=1e-9)


def test_decreasing_data_refit_as_constant():
    scales = np.array([100.0, 200.0, 400.0])
    costs = np.array([10.0, 8.0, 6.0])
    m = fit_cost_model(scales, costs, snap_threshold=0.0)
    assert m.is_constant()
    assert m.constant == pytest.approx(8.0)


def test_negative_intercept_pinned_to_zero():
    scales = np.array([100.0, 200.0, 400.0])
    costs = 0.05 * scales - 2.0  # would fit eps < 0
    costs = np.clip(costs, 0, None)
    m = fit_cost_model(scales, costs, snap_threshold=0.0)
    assert m.constant >= 0.0
    assert m.coefficient > 0.0


def test_alternative_baseline():
    scales = np.array([100.0, 400.0, 900.0, 1600.0])
    costs = 2.0 + 0.5 * np.sqrt(scales)
    m = fit_cost_model(scales, costs, baseline=SQRT, snap_threshold=0.0)
    assert m.constant == pytest.approx(2.0, abs=1e-8)
    assert m.coefficient == pytest.approx(0.5, rel=1e-8)


def test_input_validation():
    with pytest.raises(ValueError):
        fit_cost_model([1.0], [2.0])
    with pytest.raises(ValueError):
        fit_cost_model([1.0, 2.0], [2.0])  # shape mismatch
    with pytest.raises(ValueError):
        fit_cost_model([1.0, 2.0], [-1.0, 1.0])


@settings(max_examples=30, deadline=None)
@given(
    eps=st.floats(min_value=0.0, max_value=100.0),
    alpha=st.floats(min_value=1e-4, max_value=1.0),
)
def test_clean_linear_roundtrip(eps, alpha):
    scales = np.array([64.0, 128.0, 256.0, 512.0, 1024.0])
    costs = eps + alpha * scales
    m = fit_cost_model(scales, costs, snap_threshold=0.0)
    predicted = np.array([float(m(s)) for s in scales])
    assert np.allclose(predicted, costs, rtol=1e-6, atol=1e-6)
