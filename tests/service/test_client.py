"""Tests for the service client (repro.service.client)."""

from __future__ import annotations

import socket
import threading
import urllib.error

import pytest

from repro.service.client import OverloadedError, ServiceClient, ServiceError


class _FakeTransport:
    """Scripted responses for client-side tests.

    Each entry is either a ``(status, headers, body)`` tuple or an
    exception instance to raise — the latter scripts transport-level
    failures (connection refused/reset) without any real socket.
    """

    def __init__(self, responses):
        self.responses = list(responses)
        self.calls = []

    def __call__(self, method, path, body=None):
        self.calls.append((method, path, body))
        entry = self.responses.pop(0)
        if isinstance(entry, BaseException):
            raise entry
        status, headers, raw = entry
        return status, headers, raw


def _client_with(responses) -> tuple[ServiceClient, _FakeTransport]:
    client = ServiceClient("http://fake:1")
    transport = _FakeTransport(responses)
    client.request = transport  # type: ignore[method-assign]
    return client, transport


class TestErrorMapping:
    def test_success_returns_parsed_payload(self):
        client, _ = _client_with([(200, {}, b'{"solutions":{}}')])
        assert client.solve(te_core_days=1.0, case="8-4-2-1") == {
            "solutions": {}
        }

    def test_http_error_raises_service_error_with_status(self):
        client, _ = _client_with([(400, {}, b'{"error":"missing field"}')])
        with pytest.raises(ServiceError) as excinfo:
            client.solve(te_core_days=1.0, case="8-4-2-1")
        assert excinfo.value.status == 400
        assert "missing field" in str(excinfo.value)

    def test_non_json_error_body_is_tolerated(self):
        client, _ = _client_with([(500, {}, b"internal fireball")])
        with pytest.raises(ServiceError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 500
        assert "internal fireball" in excinfo.value.payload["error"]

    def test_429_raises_overloaded_with_retry_after(self):
        client, _ = _client_with(
            [(429, {"Retry-After": "7"}, b'{"error":"queue full"}')]
        )
        with pytest.raises(OverloadedError) as excinfo:
            client.solve(te_core_days=1.0, case="8-4-2-1")
        assert excinfo.value.retry_after == 7.0

    def test_retry_after_falls_back_to_body_field(self):
        client, _ = _client_with(
            [(429, {}, b'{"error":"queue full","retry_after":2}')]
        )
        with pytest.raises(OverloadedError) as excinfo:
            client.simulate(te_core_days=1.0, case="8-4-2-1")
        assert excinfo.value.retry_after == 2.0


class TestRetries:
    def test_retries_on_429_then_succeeds(self, monkeypatch):
        sleeps: list[float] = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", lambda s: sleeps.append(s)
        )
        client, transport = _client_with(
            [
                (429, {"Retry-After": "1"}, b'{"error":"full"}'),
                (429, {"Retry-After": "2"}, b'{"error":"full"}'),
                (200, {}, b'{"ok":true}'),
            ]
        )
        assert client.solve(te_core_days=1.0, case="8-4-2-1", retries=2) == {
            "ok": True
        }
        assert sleeps == [1.0, 2.0]
        assert len(transport.calls) == 3

    def test_retries_exhausted_raises_overloaded(self, monkeypatch):
        monkeypatch.setattr("repro.service.client.time.sleep", lambda s: None)
        client, transport = _client_with(
            [(429, {"Retry-After": "1"}, b'{"error":"full"}')] * 3
        )
        with pytest.raises(OverloadedError):
            client.solve(te_core_days=1.0, case="8-4-2-1", retries=2)
        assert len(transport.calls) == 3

    def test_non_429_errors_are_not_retried(self):
        client, transport = _client_with(
            [(500, {}, b'{"error":"boom"}'), (200, {}, b"{}")]
        )
        with pytest.raises(ServiceError):
            client.solve(te_core_days=1.0, case="8-4-2-1", retries=5)
        assert len(transport.calls) == 1


class TestTransportRetries:
    """Connection-level failures share the bounded retry budget."""

    def test_connection_refused_then_success(self, monkeypatch):
        sleeps: list[float] = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", lambda s: sleeps.append(s)
        )
        client, transport = _client_with(
            [
                ConnectionRefusedError("refused"),
                ConnectionResetError("reset"),
                (200, {}, b'{"ok":true}'),
            ]
        )
        assert client.solve(te_core_days=1.0, case="8-4-2-1", retries=2) == {
            "ok": True
        }
        assert len(transport.calls) == 3
        # Bounded exponential backoff: base, then double.
        assert sleeps == [0.05, 0.1]

    def test_urllib_wrapped_refusal_is_retryable(self, monkeypatch):
        monkeypatch.setattr("repro.service.client.time.sleep", lambda s: None)
        wrapped = urllib.error.URLError(ConnectionRefusedError("refused"))
        client, transport = _client_with([wrapped, (200, {}, b"{}")])
        assert client.solve(te_core_days=1.0, case="8-4-2-1", retries=1) == {}
        assert len(transport.calls) == 2

    def test_exhausted_transport_retries_reraise(self, monkeypatch):
        monkeypatch.setattr("repro.service.client.time.sleep", lambda s: None)
        client, transport = _client_with(
            [ConnectionRefusedError("refused")] * 3
        )
        with pytest.raises(ConnectionRefusedError):
            client.solve(te_core_days=1.0, case="8-4-2-1", retries=2)
        assert len(transport.calls) == 3

    def test_non_transport_errors_are_not_retried(self, monkeypatch):
        monkeypatch.setattr("repro.service.client.time.sleep", lambda s: None)
        client, transport = _client_with(
            [ValueError("not a socket problem"), (200, {}, b"{}")]
        )
        with pytest.raises(ValueError):
            client.solve(te_core_days=1.0, case="8-4-2-1", retries=3)
        assert len(transport.calls) == 1

    def test_dying_server_restart_window_is_invisible(self):
        """A real socket server that dies mid-exchange, then recovers.

        Models a cluster worker restart: the first connection is
        slammed shut without a response (RemoteDisconnected at the
        client), the second is answered normally.  With a retry budget
        the caller sees only the success.
        """
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(4)
        port = listener.getsockname()[1]
        body = b'{"endpoint":"solve","solutions":{}}'
        response = (
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"Connection: close\r\n\r\n" + body
        )

        def serve() -> None:
            # Request 1: read, then hang up with no response bytes.
            conn, _ = listener.accept()
            conn.recv(65536)
            conn.close()
            # Request 2: the "restarted worker" answers properly.
            conn, _ = listener.accept()
            conn.recv(65536)
            conn.sendall(response)
            conn.close()

        server = threading.Thread(target=serve, daemon=True)
        server.start()
        try:
            client = ServiceClient(f"http://127.0.0.1:{port}", timeout=10.0)
            result = client.solve(
                te_core_days=1.0, case="8-4-2-1", retries=2
            )
            assert result == {"endpoint": "solve", "solutions": {}}
        finally:
            server.join(timeout=10.0)
            listener.close()

    def test_no_retry_budget_propagates_immediately(self):
        client, transport = _client_with([ConnectionRefusedError("refused")])
        with pytest.raises(ConnectionRefusedError):
            client.solve(te_core_days=1.0, case="8-4-2-1")
        assert len(transport.calls) == 1


class TestSolveBatch:
    def test_solve_batch_posts_requests_envelope(self):
        client, transport = _client_with(
            [(200, {}, b'{"count":2,"results":[{},{}]}')]
        )
        payload = client.solve_batch(
            [
                {"te_core_days": 1.0, "case": "8-4-2-1"},
                {"te_core_days": 2.0, "case": "8-4-2-1"},
            ]
        )
        assert payload["count"] == 2
        method, path, body = transport.calls[0]
        assert (method, path) == ("POST", "/v1/solve_batch")
        assert [item["te_core_days"] for item in body["requests"]] == [1.0, 2.0]

    def test_solve_batch_propagates_http_errors(self):
        client, _ = _client_with(
            [(400, {}, b'{"error":"bad item","index":1}')]
        )
        with pytest.raises(ServiceError) as excinfo:
            client.solve_batch([{"te_core_days": 1.0, "case": "x"}])
        assert excinfo.value.status == 400
        assert excinfo.value.payload["index"] == 1


class TestUrlHandling:
    def test_base_url_trailing_slash_stripped(self):
        client = ServiceClient("http://host:1/")
        assert client.base_url == "http://host:1"
