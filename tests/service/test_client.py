"""Tests for the service client (repro.service.client)."""

from __future__ import annotations

import pytest

from repro.service.client import OverloadedError, ServiceClient, ServiceError


class _FakeTransport:
    """Scripted (status, headers, body) responses for client-side tests."""

    def __init__(self, responses):
        self.responses = list(responses)
        self.calls = []

    def __call__(self, method, path, body=None):
        self.calls.append((method, path, body))
        status, headers, raw = self.responses.pop(0)
        return status, headers, raw


def _client_with(responses) -> tuple[ServiceClient, _FakeTransport]:
    client = ServiceClient("http://fake:1")
    transport = _FakeTransport(responses)
    client.request = transport  # type: ignore[method-assign]
    return client, transport


class TestErrorMapping:
    def test_success_returns_parsed_payload(self):
        client, _ = _client_with([(200, {}, b'{"solutions":{}}')])
        assert client.solve(te_core_days=1.0, case="8-4-2-1") == {
            "solutions": {}
        }

    def test_http_error_raises_service_error_with_status(self):
        client, _ = _client_with([(400, {}, b'{"error":"missing field"}')])
        with pytest.raises(ServiceError) as excinfo:
            client.solve(te_core_days=1.0, case="8-4-2-1")
        assert excinfo.value.status == 400
        assert "missing field" in str(excinfo.value)

    def test_non_json_error_body_is_tolerated(self):
        client, _ = _client_with([(500, {}, b"internal fireball")])
        with pytest.raises(ServiceError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 500
        assert "internal fireball" in excinfo.value.payload["error"]

    def test_429_raises_overloaded_with_retry_after(self):
        client, _ = _client_with(
            [(429, {"Retry-After": "7"}, b'{"error":"queue full"}')]
        )
        with pytest.raises(OverloadedError) as excinfo:
            client.solve(te_core_days=1.0, case="8-4-2-1")
        assert excinfo.value.retry_after == 7.0

    def test_retry_after_falls_back_to_body_field(self):
        client, _ = _client_with(
            [(429, {}, b'{"error":"queue full","retry_after":2}')]
        )
        with pytest.raises(OverloadedError) as excinfo:
            client.simulate(te_core_days=1.0, case="8-4-2-1")
        assert excinfo.value.retry_after == 2.0


class TestRetries:
    def test_retries_on_429_then_succeeds(self, monkeypatch):
        sleeps: list[float] = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", lambda s: sleeps.append(s)
        )
        client, transport = _client_with(
            [
                (429, {"Retry-After": "1"}, b'{"error":"full"}'),
                (429, {"Retry-After": "2"}, b'{"error":"full"}'),
                (200, {}, b'{"ok":true}'),
            ]
        )
        assert client.solve(te_core_days=1.0, case="8-4-2-1", retries=2) == {
            "ok": True
        }
        assert sleeps == [1.0, 2.0]
        assert len(transport.calls) == 3

    def test_retries_exhausted_raises_overloaded(self, monkeypatch):
        monkeypatch.setattr("repro.service.client.time.sleep", lambda s: None)
        client, transport = _client_with(
            [(429, {"Retry-After": "1"}, b'{"error":"full"}')] * 3
        )
        with pytest.raises(OverloadedError):
            client.solve(te_core_days=1.0, case="8-4-2-1", retries=2)
        assert len(transport.calls) == 3

    def test_non_429_errors_are_not_retried(self):
        client, transport = _client_with(
            [(500, {}, b'{"error":"boom"}'), (200, {}, b"{}")]
        )
        with pytest.raises(ServiceError):
            client.solve(te_core_days=1.0, case="8-4-2-1", retries=5)
        assert len(transport.calls) == 1


class TestUrlHandling:
    def test_base_url_trailing_slash_stripped(self):
        client = ServiceClient("http://host:1/")
        assert client.base_url == "http://host:1"
