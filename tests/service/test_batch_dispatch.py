"""Vectorized scheduler dispatch: one kernel pass per drained solve batch.

The batched dispatch path must be invisible to clients: identical
canonical-JSON bytes, identical cache counters and stored rows, identical
divergence mapping — only the draining speed changes.  These tests drive
``run_solve_batch`` both directly through a scheduler with the runner
registered and end-to-end through :class:`ReproService`.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.core.memo import SOLVER_CACHE
from repro.obs.metrics import METRICS
from repro.service.api import build_solve, canonical_json, run_solve_batch
from repro.service.scheduler import CoalescingScheduler
from repro.service.server import ReproService
from tests.service.conftest import FAST_BODY


def _body(case: str = "24-12-6-3", **extra) -> dict:
    return {**FAST_BODY, "case": case, **extra}


def _scalar_payload(body: dict) -> dict:
    key, compute = build_solve(body)
    return compute()


def _post(url: str, body: dict) -> tuple[int, bytes]:
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


BODIES = [
    _body("24-12-6-3"),
    _body("16-12-8-4"),
    _body("24-12-6-3", strategy="ml-opt-scale"),
    _body("16-12-8-4", strategy="sl-opt-scale"),
    _body("24-12-6-3", strategy="ml-ori-scale"),
    _body("16-12-8-4", strategy="sl-ori-scale"),
]


class TestRunSolveBatch:
    def test_bytes_identical_to_scalar_computes(self):
        scalar = [canonical_json(_scalar_payload(b)) for b in BODIES]
        scalar_stats = SOLVER_CACHE.stats()
        SOLVER_CACHE.clear()
        with CoalescingScheduler(
            queue_max=16,
            batch_max=len(BODIES),
            batch_runners={"solve": run_solve_batch},
        ) as sched:
            results = []
            threads = []
            lock = threading.Lock()

            def submit(i, body):
                key, compute = build_solve(body)
                payload = sched.submit(key, compute)
                with lock:
                    results.append((i, canonical_json(payload)))

            for i, body in enumerate(BODIES):
                t = threading.Thread(target=submit, args=(i, body))
                t.start()
                threads.append(t)
            for t in threads:
                t.join()
        batched = [data for _, data in sorted(results)]
        assert batched == scalar
        assert SOLVER_CACHE.stats() == scalar_stats

    def test_one_kernel_pass_counts_vector_batch(self):
        before = METRICS.counter("service.vector_batches").value
        with CoalescingScheduler(
            queue_max=16,
            batch_max=8,
            batch_runners={"solve": run_solve_batch},
        ) as sched:
            key, compute = build_solve(_body())
            sched.submit(key, compute)
        assert METRICS.counter("service.vector_batches").value > before

    def test_unrecognized_group_uses_per_entry_path(self):
        """A scheduler without the runner ignores batch_group entirely."""
        with CoalescingScheduler(queue_max=4) as sched:
            key, compute = build_solve(_body())
            payload = sched.submit(key, compute)
        assert payload["endpoint"] == "solve"

    def test_cache_hit_skips_kernel_and_execution_counter(self):
        key, compute = build_solve(_body())
        warm = compute()
        executions = METRICS.counter("service.executions").value
        with CoalescingScheduler(
            queue_max=4, batch_runners={"solve": run_solve_batch}
        ) as sched:
            key2, compute2 = build_solve(_body())
            payload = sched.submit(key2, compute2)
        assert canonical_json(payload) == canonical_json(warm)
        assert METRICS.counter("service.executions").value == executions


class TestServiceEndToEnd:
    @pytest.fixture
    def service(self):
        with ReproService(
            port=0, store_path=None, queue_max=32, batch_max=8, jobs=2
        ) as svc:
            yield svc

    def test_burst_of_distinct_solves_bit_identical(self, service):
        scalar = {
            i: canonical_json(_scalar_payload(body))
            for i, body in enumerate(BODIES)
        }
        SOLVER_CACHE.clear()
        results: dict[int, tuple[int, bytes]] = {}
        lock = threading.Lock()

        def hit(i, body):
            status, data = _post(service.url + "/v1/solve", body)
            with lock:
                results[i] = (status, data)

        threads = [
            threading.Thread(target=hit, args=(i, body))
            for i, body in enumerate(BODIES)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(status == 200 for status, _ in results.values())
        assert {i: data for i, (_, data) in results.items()} == scalar

    def test_batch_solve_off_is_identical(self):
        with ReproService(
            port=0, store_path=None, batch_solve=False
        ) as svc:
            status_off, data_off = _post(svc.url + "/v1/solve", _body())
        SOLVER_CACHE.clear()
        with ReproService(
            port=0, store_path=None, batch_solve=True
        ) as svc:
            status_on, data_on = _post(svc.url + "/v1/solve", _body())
        assert (status_off, data_off) == (status_on, data_on)
        assert status_on == 200

    def test_divergent_solve_maps_to_422_per_request(self, service):
        """A diverging configuration answers 422 while a healthy one in
        the same burst answers 200."""
        bad = _body("9999-9999-9999-9999")
        good = _body()
        results: dict[str, tuple[int, bytes]] = {}
        lock = threading.Lock()

        def hit(name, body):
            status, data = _post(service.url + "/v1/solve", body)
            with lock:
                results[name] = (status, data)

        threads = [
            threading.Thread(target=hit, args=(name, body))
            for name, body in (("bad", bad), ("good", good))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results["good"][0] == 200
        assert results["bad"][0] == 422
        assert b"diverged" in results["bad"][1]
