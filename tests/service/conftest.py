"""Service-test fixtures: isolate the process-global cache per test."""

from __future__ import annotations

import pytest

from repro.core.memo import SOLVER_CACHE


@pytest.fixture(autouse=True)
def clean_solver_cache():
    """Reset the global solver cache, bound, and store hook around each test."""
    SOLVER_CACHE.clear()
    SOLVER_CACHE.detach_store()
    SOLVER_CACHE.set_max_entries(None)
    yield
    SOLVER_CACHE.clear()
    SOLVER_CACHE.detach_store()
    SOLVER_CACHE.set_max_entries(None)


#: A millisecond-fast model configuration shared by the HTTP tests.
FAST_BODY = {
    "te_core_days": 200.0,
    "case": "24-12-6-3",
    "ideal_scale": 2000.0,
    "allocation": 30.0,
}
