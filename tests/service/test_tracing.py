"""End-to-end request tracing through the HTTP service stack.

One ``ServiceClient.solve()`` with span recording on must yield a single
trace whose tree — client.request -> server.request -> scheduler.execute
-> solver spans — reconstructs from the span JSONL alone; coalesced
duplicates link to the executing span via ``coalesced_to``; ``GET
/metrics`` serves Prometheus text with the request-latency histogram and
memo counters; every request leaves one structured JSON access-log line.
"""

from __future__ import annotations

import json
import logging
import threading
import time

import pytest

import repro.service.api as api
from repro.obs.logconf import get_logger
from repro.obs.metrics import METRICS
from repro.obs.spans import (
    SpanRecorder,
    build_span_tree,
    read_spans_jsonl,
    recording,
    write_spans_jsonl,
)
from repro.service.client import ServiceClient
from repro.service.server import ReproService

from tests.service.conftest import FAST_BODY


@pytest.fixture
def recorder():
    rec = SpanRecorder()
    with recording(rec):
        yield rec


@pytest.fixture
def store_path(tmp_path):
    # An isolated store: the default DEFAULT_STORE_PATH would answer
    # FAST_BODY from a previous run's sqlite file and skip the solver.
    return tmp_path / "results.sqlite"


def _by_name(spans, name):
    return [s for s in spans if s.name == name]


class TestEndToEndTrace:
    def test_one_solve_yields_one_reconstructable_trace(
        self, recorder, store_path, tmp_path
    ):
        with ReproService(port=0, store_path=store_path) as svc:
            client = ServiceClient(svc.url)
            result = client.solve(**FAST_BODY)
        assert "solutions" in result

        # Everything from one request belongs to one trace.
        spans = recorder.spans
        trace_ids = {s.trace_id for s in spans}
        assert len(trace_ids) == 1

        # The tree must reconstruct from the JSONL file ALONE.
        path = write_spans_jsonl(tmp_path / "spans.jsonl", spans)
        loaded = read_spans_jsonl(path)
        assert loaded == spans

        (client_span,) = _by_name(loaded, "client.request")
        (server_span,) = _by_name(loaded, "server.request")
        (sched_span,) = _by_name(loaded, "scheduler.execute")
        assert client_span.parent_id is None
        assert server_span.parent_id == client_span.span_id
        assert sched_span.parent_id == server_span.span_id
        assert client_span.attributes["http.status"] == 200
        assert server_span.attributes["http.path"] == "/v1/solve"

        # The solver work hangs off the scheduler span: one
        # solver.optimize per optimizing strategy, with outer iterations.
        optimizes = _by_name(loaded, "solver.optimize")
        assert optimizes
        assert {s.parent_id for s in optimizes} == {sched_span.span_id}
        outers = _by_name(loaded, "solver.outer")
        assert outers
        optimize_ids = {s.span_id for s in optimizes}
        assert {s.parent_id for s in outers} <= optimize_ids

        # And the reconstructed forest has the client span as its root.
        roots = build_span_tree(loaded)
        assert [r[0].name for r in roots] == ["client.request"]

    def test_scheduler_span_carries_queue_wait_exec_split(
        self, recorder, store_path
    ):
        with ReproService(port=0, store_path=store_path) as svc:
            ServiceClient(svc.url).solve(**FAST_BODY)
        (sched_span,) = _by_name(recorder.spans, "scheduler.execute")
        # Distinct timing fields: how long the entry queued vs. how long
        # the compute ran.  Both non-negative floats; exec dominates the
        # span's own duration for a real (non-hit) solve.
        queue_wait = sched_span.attributes["queue_wait_s"]
        exec_s = sched_span.attributes["exec_s"]
        assert isinstance(queue_wait, float) and queue_wait >= 0.0
        assert isinstance(exec_s, float) and exec_s > 0.0
        assert exec_s <= (sched_span.end - sched_span.start) + 0.05

    def test_coalesced_duplicates_link_to_the_executing_span(
        self, recorder, store_path, monkeypatch
    ):
        gate = threading.Event()
        real = api.compare_all_strategies

        def gated(params, **kwargs):
            gate.wait(10)
            return real(params, **kwargs)

        monkeypatch.setattr(api, "compare_all_strategies", gated)
        coalesced_before = METRICS.counter("service.coalesced").value
        n_clients = 4

        with ReproService(port=0, store_path=store_path, queue_max=16) as svc:
            client = ServiceClient(svc.url)

            def request():
                client.request("POST", "/v1/solve", FAST_BODY)

            threads = [
                threading.Thread(target=request) for _ in range(n_clients)
            ]
            for t in threads:
                t.start()
            deadline = time.monotonic() + 10.0
            while (
                METRICS.counter("service.coalesced").value - coalesced_before
                < n_clients - 1
            ):
                if time.monotonic() > deadline:
                    gate.set()
                    pytest.fail("duplicates never coalesced")
                time.sleep(0.005)
            gate.set()
            for t in threads:
                t.join()

        spans = recorder.spans
        (executing,) = _by_name(spans, "scheduler.execute")
        assert executing.attributes["waiters"] == n_clients
        server_spans = _by_name(spans, "server.request")
        assert len(server_spans) == n_clients
        linked = [
            s for s in server_spans if "coalesced_to" in s.attributes
        ]
        # every duplicate (all but the span that created the entry) links
        # to the span that actually ran the computation
        assert len(linked) == n_clients - 1
        assert {s.attributes["coalesced_to"] for s in linked} == {
            executing.span_id
        }


class TestMetricsEndpoint:
    def test_prometheus_text_exposes_latency_and_memo_metrics(
        self, store_path
    ):
        with ReproService(port=0, store_path=store_path) as svc:
            client = ServiceClient(svc.url)
            client.solve(**FAST_BODY)
            status, headers, raw = client.request("GET", "/metrics")
            assert status == 200
            assert headers["Content-Type"] == "text/plain; version=0.0.4"
            text = raw.decode("utf-8")

        # Latency histogram with cumulative buckets for the solve route
        # (METRICS is process-global, so assert shape, not exact counts).
        assert "# TYPE repro_service_request_seconds_solve histogram" in text
        assert 'repro_service_request_seconds_solve_bucket{le="+Inf"}' in text
        assert 'repro_service_request_seconds_solve_bucket{le="0.001"}' in text
        assert "repro_service_request_seconds_solve_sum " in text
        assert "repro_service_request_seconds_solve_count " in text
        # Memo cache counters are published even when they never fired.
        for series in (
            "repro_memo_evictions ",
            "repro_memo_persist_hits ",
        ):
            assert series in text
        assert "# TYPE repro_memo_hits counter" in text

    def test_json_summary_reports_slo_percentiles(self, store_path):
        with ReproService(port=0, store_path=store_path) as svc:
            client = ServiceClient(svc.url)
            client.solve(**FAST_BODY)
            summary = client.metrics()
        latency = summary["metrics"]["service.request_seconds.solve"]
        assert latency["count"] >= 1
        assert set(latency) >= {"p50", "p95", "p99", "sum", "min", "max"}


class TestAccessLog:
    def test_every_request_emits_one_json_line(self, recorder, store_path):
        records: list[dict] = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(json.loads(record.getMessage()))

        handler = Capture()
        access_logger = get_logger("service.access")
        access_logger.addHandler(handler)
        try:
            with ReproService(port=0, store_path=store_path) as svc:
                client = ServiceClient(svc.url)
                client.healthz()
                client.solve(**FAST_BODY)
        finally:
            access_logger.removeHandler(handler)

        by_path = {r["path"]: r for r in records}
        assert by_path["/healthz"]["status"] == 200
        solve = by_path["/v1/solve"]
        assert solve["method"] == "POST"
        assert solve["status"] == 200
        assert solve["duration_ms"] >= 0
        # The access log carries the request's trace id for correlation.
        (server_span,) = _by_name(recorder.spans, "server.request")
        assert solve["trace_id"] == server_span.trace_id
