"""Tests for the sharded coordinator/worker cluster (repro.service.cluster).

The acceptance scenarios of the cluster PR:

* **Equivalence matrix** — identical canonical-JSON response bytes for
  ``solve`` / ``simulate`` / ``solve_batch`` across 1 / 2 / 4 workers,
  cold cache and warm cache, all byte-equal to a single-process
  :class:`ReproService`; worker-side span-tree signatures equal across
  topologies for the single-request endpoints (batch slices necessarily
  differ in fan-out shape, so batch asserts within-topology signature
  determinism instead).
* **Crash recovery** — a worker killed provably mid-batch is restarted
  by the coordinator and the lost slice replayed; the aggregate
  response is still byte-identical to the single-process answer.
* **Topology introspection** — the coordinator's ``/healthz`` carries
  per-worker liveness and the shard map; workers self-identify.

These spawn real subprocesses (via ``repro serve-worker``), so they are
the slowest tests in the service suite — a few seconds each.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from collections import defaultdict

import pytest

from repro.obs.flightrec import stitch_spans
from repro.obs.metrics import METRICS
from repro.obs.spans import read_spans_jsonl, span_tree_signature
from repro.service.client import ServiceClient
from repro.service.cluster import ClusterService
from repro.service.server import ReproService

from tests.service.conftest import FAST_BODY

#: Fixed client-side span context: same traceparent across topologies
#: makes every worker-side span id a pure function of the request.
CLIENT_SPAN_ID = "ab" * 8

# Disjoint parameter families per endpoint: solve/simulate/batch must
# not share memoized sub-computations, or "which nested solver spans a
# cold request emits" would depend on whether an *earlier* request for
# the same params landed on the same shard — true at --workers 1,
# topology-dependent beyond.  Response bytes never depend on this; the
# span-tree comparison does.
SOLVE_BODY = dict(FAST_BODY)
SIMULATE_BODY = dict(
    FAST_BODY, te_core_days=210.0, strategy="ml-opt-scale",
    runs=5, seed=0, jitter=0.3,
)
BATCH_BODIES = [
    dict(FAST_BODY, te_core_days=220.0 + i) for i in range(6)
]


def _post(url: str, path: str, body: dict, trace: str) -> tuple[int, bytes]:
    """POST with a pinned traceparent; returns (status, raw bytes)."""
    request = urllib.request.Request(
        f"{url}{path}",
        data=json.dumps(body).encode("utf-8"),
        headers={
            "Content-Type": "application/json",
            "traceparent": f"00-{trace}-{CLIENT_SPAN_ID}-01",
        },
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=120.0) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _trace(n: int) -> str:
    return f"{n:032x}"


def _single_process_reference() -> dict[str, bytes]:
    """Expected bytes from a plain single-process service (cold+warm)."""
    from repro.core.memo import SOLVER_CACHE

    SOLVER_CACHE.clear()
    out: dict[str, bytes] = {}
    with ReproService(port=0, store_path=None) as svc:
        for phase in ("cold", "warm"):
            out[f"solve.{phase}"] = _post(
                svc.url, "/v1/solve", SOLVE_BODY, _trace(1)
            )[1]
            out[f"simulate.{phase}"] = _post(
                svc.url, "/v1/simulate", SIMULATE_BODY, _trace(2)
            )[1]
            out[f"solve_batch.{phase}"] = _post(
                svc.url, "/v1/solve_batch", {"requests": BATCH_BODIES},
                _trace(3),
            )[1]
    SOLVER_CACHE.clear()
    return out


def _run_topology(workers: int, spans_dir) -> tuple[dict, dict, dict]:
    """One cluster run: response bytes + per-trace span signatures,
    both offline (stitched shard files) and online (coordinator
    ``GET /v1/trace/<id>`` against the live workers' flight recorders).
    """
    responses: dict[str, bytes] = {}
    online: dict[str, str] = {}
    with ClusterService(
        workers=workers, store_dir=None, spans_dir=spans_dir
    ) as svc:
        statuses = []
        for phase, trace_base in (("cold", 10), ("warm", 20)):
            for offset, (name, path, body) in enumerate(
                (
                    ("solve", "/v1/solve", SOLVE_BODY),
                    ("simulate", "/v1/simulate", SIMULATE_BODY),
                    (
                        "solve_batch",
                        "/v1/solve_batch",
                        {"requests": BATCH_BODIES},
                    ),
                )
            ):
                status, raw = _post(
                    svc.url, path, body, _trace(trace_base + offset)
                )
                statuses.append(status)
                responses[f"{name}.{phase}"] = raw
        assert statuses == [200] * 6
        # While the workers are still alive: the coordinator stitches
        # each trace from the shards' in-memory flight recorders.
        from repro.obs.spans import span_from_dict

        for trace_base in (10, 20):
            for offset in range(3):
                trace = _trace(trace_base + offset)
                with urllib.request.urlopen(
                    f"{svc.url}/v1/trace/{trace}", timeout=10.0
                ) as resp:
                    payload = json.loads(resp.read())
                online[trace] = span_tree_signature(
                    [span_from_dict(s) for s in payload["spans"]]
                )
    # Workers have drained and exited: their span files are complete.
    spans = []
    for sink in sorted(spans_dir.glob("spans-shard*.jsonl")):
        spans.extend(read_spans_jsonl(sink))
    by_trace: dict[str, list] = defaultdict(list)
    for record in spans:
        by_trace[record.trace_id].append(record)
    # Stitch into canonical order first: a multi-shard trace's spans
    # arrive interleaved across files, and the online fan-out stitches
    # the same way — that shared ordering is what makes the two sides
    # bit-comparable.
    signatures = {
        trace: span_tree_signature(stitch_spans(members))
        for trace, members in by_trace.items()
    }
    return responses, signatures, online


class TestEquivalenceMatrix:
    def test_bytes_and_span_signatures_across_worker_counts(self, tmp_path):
        reference = _single_process_reference()
        results = {}
        for workers in (1, 2, 4):
            spans_dir = tmp_path / f"w{workers}"
            spans_dir.mkdir()
            results[workers] = _run_topology(workers, spans_dir)

        # Response bytes: every topology, every endpoint, cold and warm,
        # byte-identical to the single-process answer.
        for workers, (responses, _, _) in results.items():
            for name, expected in reference.items():
                assert responses[name] == expected, (
                    f"{name} differs at --workers {workers}"
                )

        # Worker-side span trees: identical signatures across topologies
        # for the single-request endpoints (the coordinator forwards the
        # client's traceparent unchanged, so ids derive identically).
        _, sig1, _ = results[1]
        for workers in (2, 4):
            _, sigs, _ = results[workers]
            for trace_base in (10, 20):  # cold and warm
                for offset in (0, 1):  # solve, simulate
                    trace = _trace(trace_base + offset)
                    assert sigs[trace] == sig1[trace], (
                        f"span signature for trace {trace} differs at "
                        f"--workers {workers}"
                    )

        # solve_batch scatter shape legitimately varies with the worker
        # count, so batch traces assert *within-topology* determinism:
        # cold(1 worker) == cold(1 worker rerun) is covered by the byte
        # assert; here: every batch trace produced a non-empty tree.
        for workers, (_, sigs, _) in results.items():
            for trace_base in (10, 20):
                assert sigs[_trace(trace_base + 2)], (
                    f"no batch spans recorded at --workers {workers}"
                )

        # Online == offline: the coordinator's live /v1/trace/<id>
        # (fan-out over worker flight recorders, stitched) describes
        # bit-identically the same tree as merging the shards' span
        # files after shutdown — for every trace, at every topology.
        for workers, (_, sigs, online) in results.items():
            for trace_base in (10, 20):
                for offset in range(3):
                    trace = _trace(trace_base + offset)
                    assert online[trace] == sigs[trace], (
                        f"online trace {trace} differs from the stitched "
                        f"span files at --workers {workers}"
                    )

    def test_batch_span_signature_is_deterministic_per_topology(
        self, tmp_path
    ):
        """Same topology, same warm batch twice -> same signature.

        Trace ids differ per request, so compare signatures with the
        trace-id column dropped (span ids derive from the pinned client
        span id, not the trace id).
        """
        spans_dir = tmp_path / "spans"
        spans_dir.mkdir()
        with ClusterService(
            workers=2, store_dir=None, spans_dir=spans_dir
        ) as svc:
            body = {"requests": BATCH_BODIES}
            _post(svc.url, "/v1/solve_batch", body, _trace(40))  # cold
            _post(svc.url, "/v1/solve_batch", body, _trace(41))  # warm A
            _post(svc.url, "/v1/solve_batch", body, _trace(42))  # warm B
        spans = []
        for sink in sorted(spans_dir.glob("spans-shard*.jsonl")):
            spans.extend(read_spans_jsonl(sink))
        per_trace = defaultdict(list)
        for record in spans:
            per_trace[record.trace_id].append(record)

        def anonymous(trace: str) -> tuple:
            sig = span_tree_signature(per_trace[trace])
            return tuple(entry[1:] for entry in sig)  # drop trace_id

        assert anonymous(_trace(41)) == anonymous(_trace(42))


class TestCrashRecovery:
    def test_worker_killed_mid_batch_is_restarted_and_replayed(self):
        bodies = [
            dict(FAST_BODY, te_core_days=300.0 + i) for i in range(6)
        ]
        # Reference bytes from a single process (fresh cache via the
        # autouse fixture; cleared again afterwards by the same).
        from repro.core.memo import SOLVER_CACHE

        with ReproService(port=0, store_path=None) as single:
            expected = _post(
                single.url, "/v1/solve_batch", {"requests": bodies},
                _trace(50),
            )[1]
        SOLVER_CACHE.clear()

        restarts_before = METRICS.counter("cluster.restarts.0").value
        with ClusterService(
            workers=2, store_dir=None, request_delay_s=0.4
        ) as svc:
            result: dict = {}

            def go() -> None:
                result["reply"] = _post(
                    svc.url, "/v1/solve_batch", {"requests": bodies},
                    _trace(51),
                )

            sender = threading.Thread(target=go)
            sender.start()
            # Every worker sleeps 0.4 s before dispatching, so at 0.15 s
            # the victim is provably holding its slice mid-request.
            time.sleep(0.15)
            victim = svc.supervisor.workers[0]
            pid_before = victim.process.pid
            victim.process.kill()
            sender.join(timeout=120.0)
            assert not sender.is_alive()
            status, raw = result["reply"]
            assert status == 200
            assert raw == expected
            assert victim.process.pid != pid_before
            assert victim.restarts >= 1
        assert METRICS.counter("cluster.restarts.0").value > restarts_before

    def test_single_solve_survives_worker_restart_window(self):
        with ClusterService(workers=2, store_dir=None) as svc:
            client = ServiceClient(svc.url, timeout=120.0)
            warm = client.solve(**FAST_BODY)
            # Kill both workers: whichever owns the key must come back.
            for handle in svc.supervisor.workers:
                handle.process.kill()
            again = client.solve(**FAST_BODY)
            assert again == warm


class TestTopologyIntrospection:
    def test_coordinator_healthz_reports_workers_and_shard_map(self):
        with ClusterService(workers=2, store_dir=None) as svc:
            payload = ServiceClient(svc.url).healthz()
        assert payload["role"] == "coordinator"
        assert payload["status"] == "ok"
        assert payload["uptime_s"] >= 0.0
        assert payload["shard_map"]["shards"] == 2
        workers = payload["workers"]
        assert [w["shard"] for w in workers] == [0, 1]
        for entry in workers:
            assert entry["alive"] is True
            assert entry["status"] == "ok"
            assert entry["queue_depth"] == 0
            assert entry["restarts"] == 0

    def test_worker_healthz_self_identifies(self):
        with ClusterService(workers=2, store_dir=None) as svc:
            handle = svc.supervisor.workers[1]
            payload = ServiceClient(handle.url).healthz()
        assert payload["role"] == "worker"
        assert payload["shard"] == 1
        assert "uptime_s" in payload and "queue_depth" in payload

    def test_same_key_always_routes_to_one_shard(self):
        shard_counters = [
            METRICS.counter("cluster.shard.0.requests"),
            METRICS.counter("cluster.shard.1.requests"),
        ]
        before = [c.value for c in shard_counters]
        with ClusterService(workers=2, store_dir=None) as svc:
            client = ServiceClient(svc.url, timeout=120.0)
            for _ in range(3):
                client.solve(**FAST_BODY)
        deltas = [c.value - b for c, b in zip(shard_counters, before)]
        assert sorted(deltas) == [0.0, 3.0]

    def test_merged_metrics_carry_service_series(self):
        with ClusterService(workers=2, store_dir=None) as svc:
            client = ServiceClient(svc.url, timeout=120.0)
            client.solve_batch(BATCH_BODIES)
            merged = client.metrics()["metrics"]
        assert merged.get("service.executions") == len(BATCH_BODIES)
        assert merged.get("cluster.requests.solve_batch", 0) >= 1.0


class TestValidationAtCoordinator:
    def test_malformed_solve_is_rejected_without_forwarding(self):
        before = METRICS.counter("cluster.shard.0.requests").value
        before1 = METRICS.counter("cluster.shard.1.requests").value
        with ClusterService(workers=2, store_dir=None) as svc:
            status, raw = _post(
                svc.url, "/v1/solve", {"case": "24-12-6-3"}, _trace(60)
            )
        assert status == 400
        assert b"te_core_days" in raw
        assert METRICS.counter("cluster.shard.0.requests").value == before
        assert METRICS.counter("cluster.shard.1.requests").value == before1

    def test_bad_batch_item_index_is_global(self):
        with ClusterService(workers=2, store_dir=None) as svc:
            status, raw = _post(
                svc.url,
                "/v1/solve_batch",
                {"requests": [dict(FAST_BODY), {"case": "nope"}]},
                _trace(61),
            )
        assert status == 400
        assert json.loads(raw)["index"] == 1
