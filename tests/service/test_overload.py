"""429 / ``ServiceOverloaded`` behavior under sustained overload.

Covers the backpressure contract end to end: the bounded queue really
is bounded while overloaded, shed responses advertise an *honest*
drain-rate-derived ``Retry-After`` (float in the body, integer
delta-seconds in the header), the bundled client honors the tighter
body hint, and coalesced waiters never double-count in the
queue-wait / execution histograms.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.metrics import LATENCY_BUCKETS, METRICS
from repro.service.client import ServiceClient
from repro.service.scheduler import (
    RETRY_AFTER_MAX,
    RETRY_AFTER_MIN,
    CoalescingScheduler,
    ServiceOverloaded,
)
from repro.service.server import ReproService


def _wait_until(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            pytest.fail("condition not reached within timeout")
        time.sleep(0.005)


def _fill(sched: CoalescingScheduler, gate: threading.Event, n: int):
    """Occupy the scheduler with ``n`` gate-blocked distinct entries.

    Staggered (entry 0 must be *executing* before entry 1 enqueues, and
    so on) so none of the fill entries race each other into a rejection.
    Assumes ``batch_max=1, jobs=1``: one executes, the rest queue.
    """
    threads = []
    for i in range(n):
        t = threading.Thread(
            target=lambda i=i: sched.submit(
                ("blocked", i), lambda: gate.wait(10)
            )
        )
        t.start()
        threads.append(t)
        _wait_until(
            lambda i=i: sched.in_flight() == i + 1
            and sched.queue_depth() == i
        )
    return threads


class TestHonestRetryAfter:
    def test_cold_scheduler_advertises_configured_constant(self):
        gate = threading.Event()
        sched = CoalescingScheduler(
            queue_max=1, batch_max=1, jobs=1, retry_after=3.5
        )
        try:
            threads = _fill(sched, gate, 2)
            _wait_until(lambda: sched.queue_depth() == 1)
            with pytest.raises(ServiceOverloaded) as excinfo:
                sched.submit("c", lambda: None)
            # No completions observed yet: no drain rate to derive an
            # estimate from, so the configured constant is advertised.
            assert excinfo.value.retry_after == 3.5
        finally:
            gate.set()
            for t in threads:
                t.join()
            sched.close()

    def test_warm_scheduler_derives_estimate_from_drain_rate(self):
        gate = threading.Event()
        sched = CoalescingScheduler(
            queue_max=1, batch_max=1, jobs=1, retry_after=25.0
        )
        try:
            for i in range(10):  # fast completions: a hot drain
                sched.submit(("warm", i), lambda: None)
            threads = _fill(sched, gate, 2)
            _wait_until(lambda: sched.queue_depth() == 1)
            with pytest.raises(ServiceOverloaded) as excinfo:
                sched.submit("c", lambda: None)
            # Ten near-instant completions -> the honest estimate is far
            # below the (deliberately pessimistic) configured constant.
            assert excinfo.value.retry_after < 25.0
            assert (
                RETRY_AFTER_MIN
                <= excinfo.value.retry_after
                <= RETRY_AFTER_MAX
            )
        finally:
            gate.set()
            for t in threads:
                t.join()
            sched.close()

    def test_stale_completions_fall_back_to_configured_constant(self):
        sched = CoalescingScheduler(queue_max=1, retry_after=4.0)
        try:
            # Completions far outside DRAIN_WINDOW_SECONDS carry no
            # information about the current drain rate.
            sched._finished.extend([time.monotonic() - 3600.0] * 50)
            assert sched._retry_after_estimate() == 4.0
        finally:
            sched.close()

    def test_http_429_body_float_header_integer(self):
        gate = threading.Event()
        with ReproService(
            port=0, store_path=None, jobs=1, queue_max=1, retry_after=2.5
        ) as svc:
            threads = _fill(svc.scheduler, gate, 2)
            try:
                _wait_until(lambda: svc.scheduler.queue_depth() == 1)
                client = ServiceClient(svc.url)
                status, headers, raw = client.request(
                    "POST",
                    "/v1/solve",
                    {"te_core_days": 200.0, "case": "24-12-6-3"},
                )
                assert status == 429
                import json

                payload = json.loads(raw)
                # The body carries the honest float; the header is HTTP
                # delta-seconds: an integer, rounded *up*, never below 1.
                assert isinstance(payload["retry_after"], (int, float))
                header = int(headers["Retry-After"])
                assert header >= 1
                assert header >= payload["retry_after"]
            finally:
                gate.set()
                for t in threads:
                    t.join()

    def test_client_prefers_body_float_over_header(self, monkeypatch):
        sleeps: list[float] = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", lambda s: sleeps.append(s)
        )
        client = ServiceClient("http://fake:1")
        responses = [
            (429, {"Retry-After": "1"}, b'{"error":"full","retry_after":0.25}'),
            (200, {}, b'{"ok":true}'),
        ]
        client.request = (  # type: ignore[method-assign]
            lambda method, path, body=None: responses.pop(0)
        )
        assert client.solve(
            te_core_days=1.0, case="8-4-2-1", retries=1
        ) == {"ok": True}
        # Slept the body's tight float, not the rounded-up header second.
        assert sleeps == [0.25]


class TestQueueBound:
    def test_queue_never_exceeds_queue_max_under_sustained_overload(self):
        gate = threading.Event()
        queue_max = 4
        sched = CoalescingScheduler(
            queue_max=queue_max, batch_max=1, jobs=1
        )
        outcomes: list[str] = []
        outcomes_lock = threading.Lock()

        def submit(i: int) -> None:
            try:
                sched.submit(("load", i), lambda: gate.wait(10))
            except ServiceOverloaded:
                with outcomes_lock:
                    outcomes.append("shed")
            else:
                with outcomes_lock:
                    outcomes.append("ok")

        max_depth = 0
        try:
            threads = [
                threading.Thread(target=submit, args=(i,)) for i in range(40)
            ]
            for t in threads:
                t.start()
                max_depth = max(max_depth, sched.queue_depth())
            # Keep sampling while the flood settles.
            deadline = time.monotonic() + 1.0
            while time.monotonic() < deadline:
                max_depth = max(max_depth, sched.queue_depth())
                time.sleep(0.002)
            assert max_depth <= queue_max
            gate.set()
            for t in threads:
                t.join()
        finally:
            gate.set()
            sched.close()
        assert len(outcomes) == 40
        assert outcomes.count("shed") > 0
        assert outcomes.count("ok") + outcomes.count("shed") == 40

    def test_per_endpoint_rejected_counter(self):
        gate = threading.Event()
        before_global = METRICS.counter("service.rejected").value
        before_solve = METRICS.counter("service.rejected.solve").value
        sched = CoalescingScheduler(queue_max=1, batch_max=1, jobs=1)
        try:
            threads = _fill(sched, gate, 2)
            _wait_until(lambda: sched.queue_depth() == 1)
            with pytest.raises(ServiceOverloaded):
                sched.submit("c", lambda: None, endpoint="solve")
            assert METRICS.counter("service.rejected").value - before_global == 1.0
            assert (
                METRICS.counter("service.rejected.solve").value - before_solve
                == 1.0
            )
        finally:
            gate.set()
            for t in threads:
                t.join()
            sched.close()


class TestNoDoubleCounting:
    def test_coalesced_waiters_observe_histograms_once(self):
        gate = threading.Event()
        hist_wait = METRICS.histogram(
            "service.queue_wait_seconds", buckets=LATENCY_BUCKETS
        )
        hist_exec = METRICS.histogram(
            "service.exec_seconds", buckets=LATENCY_BUCKETS
        )
        hist_wait_ep = METRICS.histogram(
            "service.queue_wait_seconds.solve", buckets=LATENCY_BUCKETS
        )
        hist_exec_ep = METRICS.histogram(
            "service.exec_seconds.solve", buckets=LATENCY_BUCKETS
        )
        before = (
            hist_wait.count, hist_exec.count,
            hist_wait_ep.count, hist_exec_ep.count,
        )
        coalesced_before = METRICS.counter("service.coalesced.solve").value
        with CoalescingScheduler(queue_max=8, jobs=2) as sched:
            infos = [dict() for _ in range(6)]
            threads = [
                threading.Thread(
                    target=lambda info=info: sched.submit(
                        "hot",
                        lambda: gate.wait(5),
                        endpoint="solve",
                        info=info,
                    )
                )
                for info in infos
            ]
            for t in threads:
                t.start()
            _wait_until(
                lambda: METRICS.counter("service.coalesced.solve").value
                - coalesced_before
                >= 5.0
            )
            gate.set()
            for t in threads:
                t.join()
        # Six waiters, one execution: each histogram advanced exactly once.
        assert hist_wait.count - before[0] == 1
        assert hist_exec.count - before[1] == 1
        assert hist_wait_ep.count - before[2] == 1
        assert hist_exec_ep.count - before[3] == 1
        # The info out-param marked exactly the five attached duplicates.
        assert sum(1 for info in infos if info.get("coalesced")) == 5
