"""Tests for consistent-hash shard routing (repro.service.hashring)."""

from __future__ import annotations

import pytest

from repro.core.memo import canonical_key
from repro.experiments.config import make_params
from repro.service.hashring import HashRing
from repro.service.store import key_digest


def _keys(n: int) -> list:
    """Realistic canonical keys: the service's own solve keys."""
    return [
        canonical_key(
            "service.solve",
            make_params(200.0 + i, "24-12-6-3", ideal_scale=2000.0),
            "all",
        )
        for i in range(n)
    ]


class TestDeterminism:
    def test_same_ring_same_routing(self):
        keys = _keys(32)
        a, b = HashRing(4), HashRing(4)
        assert [a.shard_for_key(k) for k in keys] == [
            b.shard_for_key(k) for k in keys
        ]

    def test_digest_and_key_routing_agree(self):
        ring = HashRing(3)
        for key in _keys(8):
            assert ring.shard_for_key(key) == ring.shard_for_digest(
                key_digest(key)
            )

    def test_single_shard_owns_everything(self):
        ring = HashRing(1)
        assert {ring.shard_for_key(k) for k in _keys(16)} == {0}


class TestBalance:
    def test_keyspace_splits_roughly_evenly(self):
        # Synthetic keys are fine here: balance is a property of the
        # ring geometry, not the key content.
        keys = [("bench", i) for i in range(4000)]
        for shards in (2, 4, 8):
            counts = HashRing(shards).distribution(keys)
            assert len(counts) == shards
            assert sum(counts) == len(keys)
            expected = len(keys) / shards
            assert min(counts) > expected * 0.5
            assert max(counts) < expected * 1.6

    def test_growth_moves_a_bounded_fraction(self):
        keys = [("bench", i) for i in range(4000)]
        small, large = HashRing(4), HashRing(5)
        moved = sum(
            small.shard_for_key(k) != large.shard_for_key(k) for k in keys
        )
        # Consistent hashing: adding one shard to four moves ~1/5 of the
        # keyspace, not ~4/5 as modulo hashing would.
        assert moved / len(keys) < 0.40


class TestValidation:
    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, replicas=0)
