"""End-to-end tests: HTTP server + scheduler + memo + persistent store.

The acceptance scenario of the service PR: concurrent duplicate
``POST /v1/solve`` requests produce exactly one solver execution and
bit-identical response bytes; a cold restart (fresh process-equivalent:
cleared in-memory cache, same sqlite file) answers the same request from
the persistent store without re-solving; requests beyond the bounded
queue receive 429 with a ``Retry-After`` header.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro.service.api as api
from repro.core.memo import SOLVER_CACHE
from repro.obs.metrics import METRICS
from repro.service.client import OverloadedError, ServiceClient, ServiceError
from repro.service.server import ReproService

from tests.service.conftest import FAST_BODY


def _executions() -> float:
    return METRICS.counter("service.executions").value


def _wait_until(predicate, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            pytest.fail("condition not reached within timeout")
        time.sleep(0.005)


@pytest.fixture
def store_path(tmp_path):
    return tmp_path / "results.sqlite"


class TestEndToEnd:
    def test_duplicates_coalesce_and_persist_across_restart(
        self, store_path, monkeypatch
    ):
        # Gate the real solve so every duplicate is provably in flight
        # together (coalesced, not merely memo-hit after completion).
        gate = threading.Event()
        real = api.compare_all_strategies

        def gated(params, **kwargs):
            gate.wait(10)
            return real(params, **kwargs)

        monkeypatch.setattr(api, "compare_all_strategies", gated)
        coalesced_before = METRICS.counter("service.coalesced").value
        executions_before = _executions()
        n_clients = 8

        with ReproService(port=0, store_path=store_path, queue_max=16, jobs=2) as svc:
            client = ServiceClient(svc.url)
            responses: list[tuple[int, bytes]] = []

            def request():
                status, _, raw = client.request("POST", "/v1/solve", FAST_BODY)
                responses.append((status, raw))

            threads = [
                threading.Thread(target=request) for _ in range(n_clients)
            ]
            for t in threads:
                t.start()
            _wait_until(
                lambda: METRICS.counter("service.coalesced").value
                - coalesced_before
                >= n_clients - 1
            )
            gate.set()
            for t in threads:
                t.join()

            # (a) exactly one solver execution for 8 duplicate requests
            assert _executions() - executions_before == 1.0
            # (b) bit-identical responses
            assert all(status == 200 for status, _ in responses)
            bodies = {raw for _, raw in responses}
            assert len(bodies) == 1
            (live_bytes,) = bodies
            # sanity: the payload is a real strategy comparison
            parsed = client.solve(**FAST_BODY)
            assert set(parsed["solutions"]) == {
                "ml-opt-scale",
                "sl-opt-scale",
                "ml-ori-scale",
                "sl-ori-scale",
            }

        # (c) cold restart: fresh in-memory state, same sqlite file —
        # answered from the persistent store, zero new solver executions.
        SOLVER_CACHE.clear()
        executions_before = _executions()
        with ReproService(port=0, store_path=store_path) as svc:
            client = ServiceClient(svc.url)
            status, _, raw = client.request("POST", "/v1/solve", FAST_BODY)
            assert status == 200
            assert raw == live_bytes
            assert _executions() - executions_before == 0.0
            assert SOLVER_CACHE.stats().persist_hits >= 1

    def test_queue_overflow_returns_429_with_retry_after(
        self, store_path, monkeypatch
    ):
        gate = threading.Event()
        real = api.compare_all_strategies

        def gated(params, **kwargs):
            gate.wait(10)
            return real(params, **kwargs)

        monkeypatch.setattr(api, "compare_all_strategies", gated)

        def body(case: str) -> dict:
            return {**FAST_BODY, "case": case}

        # Distinct cases -> distinct keys -> no coalescing: the first
        # occupies the single worker, the second fills the queue, the
        # third must be rejected.
        svc = ReproService(
            port=0,
            store_path=None,
            queue_max=1,
            batch_max=1,
            jobs=1,
            retry_after=3.0,
        )
        svc.start()
        client = ServiceClient(svc.url)
        threads = []
        try:
            threads.append(
                threading.Thread(
                    target=lambda: client.request(
                        "POST", "/v1/solve", body("24-12-6-3")
                    )
                )
            )
            threads[-1].start()
            _wait_until(
                lambda: svc.scheduler.in_flight() == 1
                and svc.scheduler.queue_depth() == 0
            )
            threads.append(
                threading.Thread(
                    target=lambda: client.request(
                        "POST", "/v1/solve", body("12-6-3-1.5")
                    )
                )
            )
            threads[-1].start()
            _wait_until(lambda: svc.scheduler.queue_depth() == 1)

            status, headers, raw = client.request(
                "POST", "/v1/solve", body("6-3-1.5-0.75")
            )
            assert status == 429
            assert headers.get("Retry-After") == "3"
            with pytest.raises(OverloadedError) as excinfo:
                client.solve(**body("6-3-1.5-0.75"))
            assert excinfo.value.retry_after == 3.0
        finally:
            gate.set()
            for t in threads:
                t.join()
            svc.close()


class TestHttpSurface:
    def test_healthz_and_metrics(self, store_path):
        with ReproService(port=0, store_path=store_path) as svc:
            client = ServiceClient(svc.url)
            health = client.healthz()
            assert health["status"] == "ok"
            assert health["queue_max"] == 64
            assert health["store"]["attached"] is True
            client.solve(**FAST_BODY)
            metrics = client.metrics()["metrics"]
            assert metrics["service.requests.solve"] >= 1
            assert metrics["service.responses.200"] >= 1
            assert metrics["service.request_seconds.solve"]["count"] >= 1

    def test_simulate_is_deterministic_and_cached(self, store_path):
        body = {**FAST_BODY, "runs": 3, "seed": 1, "strategy": "ml-opt-scale"}
        with ReproService(port=0, store_path=store_path) as svc:
            client = ServiceClient(svc.url)
            _, _, raw1 = client.request("POST", "/v1/simulate", body)
            executions = _executions()
            _, _, raw2 = client.request("POST", "/v1/simulate", body)
            assert raw1 == raw2
            assert _executions() == executions  # cached, not re-simulated
            parsed = client.simulate(**body)
            assert parsed["ensemble"]["n_runs"] == 3

    def test_bad_requests_get_400(self, store_path):
        with ReproService(port=0, store_path=None) as svc:
            client = ServiceClient(svc.url)
            for body in (
                {},  # missing required fields
                {**FAST_BODY, "strategy": "nope"},
                {**FAST_BODY, "te_core_days": -1.0},
                {**FAST_BODY, "bogus_field": 1},
                {**FAST_BODY, "te_core_days": "three"},
            ):
                status, _, _ = client.request("POST", "/v1/solve", body)
                assert status == 400, body

    def test_invalid_json_gets_400(self, store_path):
        import urllib.request

        with ReproService(port=0, store_path=None) as svc:
            req = urllib.request.Request(
                f"{svc.url}/v1/solve",
                data=b"{not json",
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            try:
                urllib.request.urlopen(req, timeout=10)
                pytest.fail("expected HTTP 400")
            except urllib.error.HTTPError as exc:
                assert exc.code == 400

    def test_unknown_paths_get_404_and_wrong_method_405(self):
        with ReproService(port=0, store_path=None) as svc:
            client = ServiceClient(svc.url)
            assert client.request("GET", "/nope")[0] == 404
            assert client.request("POST", "/v1/nope", {})[0] == 404
            assert client.request("GET", "/v1/solve")[0] == 405
            with pytest.raises(ServiceError) as excinfo:
                client._call("GET", "/nope")
            assert excinfo.value.status == 404

    def test_simulate_rejects_all_strategy(self):
        with ReproService(port=0, store_path=None) as svc:
            client = ServiceClient(svc.url)
            status, _, _ = client.request(
                "POST", "/v1/simulate", {**FAST_BODY, "strategy": "all"}
            )
            assert status == 400

    def test_no_store_service_has_no_persistence(self, store_path):
        with ReproService(port=0, store_path=None) as svc:
            client = ServiceClient(svc.url)
            client.solve(**FAST_BODY)
            assert svc.store is None
            assert client.healthz()["store"]["attached"] is False
        assert not store_path.exists()
