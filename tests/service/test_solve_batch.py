"""Tests for ``POST /v1/solve_batch`` and ``submit_many`` (single process).

The batch endpoint's contract: item payloads are byte-for-byte the
payloads the same bodies would get from individual ``/v1/solve``
requests, in request order — the invariant the cluster's scatter/gather
path is built on — with atomic queue admission (a sweep fits as a whole
or is shed as a whole) and per-item validation errors that name the
offending index.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.metrics import METRICS
from repro.service.api import (
    BatchItemError,
    MAX_BATCH_ITEMS,
    build_solve_batch,
)
from repro.service.client import ServiceClient
from repro.service.scheduler import CoalescingScheduler, ServiceOverloaded
from repro.service.server import ReproService

from tests.service.conftest import FAST_BODY


def _bodies(n: int) -> list[dict]:
    return [dict(FAST_BODY, te_core_days=200.0 + i) for i in range(n)]


@pytest.fixture
def service():
    with ReproService(port=0, store_path=None, queue_max=64, jobs=2) as svc:
        yield svc


class TestSubmitMany:
    def test_results_in_request_order(self):
        with CoalescingScheduler(queue_max=16, jobs=2) as sched:
            results = sched.submit_many(
                [(i, lambda i=i: i * i) for i in range(8)]
            )
        assert results == [i * i for i in range(8)]

    def test_in_batch_duplicates_coalesce(self):
        calls: list[int] = []
        before = METRICS.counter("service.coalesced").value
        with CoalescingScheduler(queue_max=16, jobs=2) as sched:
            results = sched.submit_many(
                [("k", lambda: calls.append(1) or "v")] * 4
            )
        assert results == ["v"] * 4
        assert len(calls) == 1
        assert METRICS.counter("service.coalesced").value - before == 3.0

    def test_admission_is_atomic(self):
        gate = threading.Event()
        sched = CoalescingScheduler(queue_max=2, batch_max=1, jobs=1)
        try:
            blocker = threading.Thread(
                target=lambda: sched.submit("block", lambda: gate.wait(5))
            )
            blocker.start()
            while not (sched.in_flight() == 1 and sched.queue_depth() == 0):
                pass
            # Three distinct new keys cannot fit a 2-slot queue: the
            # whole batch is shed, nothing half-admitted.
            with pytest.raises(ServiceOverloaded):
                sched.submit_many([(i, lambda: None) for i in range(3)])
            assert sched.queue_depth() == 0
            # Two fit fine once offered as a whole.
            assert sched.submit_many(
                [(i, lambda i=i: i) for i in range(2)]
            ) == [0, 1]
        finally:
            gate.set()
            sched.close()

    def test_first_failing_entry_reports_its_index(self):
        def boom():
            raise ValueError("boom")

        with CoalescingScheduler(queue_max=16) as sched:
            with pytest.raises(ValueError) as excinfo:
                sched.submit_many(
                    [("a", lambda: 1), ("b", boom), ("c", lambda: 3)]
                )
        assert excinfo.value.batch_index == 1


class TestValidation:
    def test_bad_item_raises_with_index(self):
        body = {"requests": [dict(FAST_BODY), {"te_core_days": -1, "case": "x"}]}
        with pytest.raises(BatchItemError) as excinfo:
            build_solve_batch(body)
        assert excinfo.value.index == 1

    def test_envelope_shape_enforced(self):
        from repro.service.api import RequestError

        for bad in (
            {"requests": []},
            {"requests": "nope"},
            {"items": [FAST_BODY]},
            {"requests": [FAST_BODY], "extra": 1},
        ):
            with pytest.raises(RequestError):
                build_solve_batch(bad)

    def test_oversized_batch_rejected(self):
        from repro.service.api import RequestError

        body = {"requests": [dict(FAST_BODY)] * (MAX_BATCH_ITEMS + 1)}
        with pytest.raises(RequestError, match="batch too large"):
            build_solve_batch(body)


class TestEndpoint:
    def test_batch_items_byte_identical_to_single_solves(self, service):
        client = ServiceClient(service.url)
        bodies = _bodies(5)
        status, _, raw = client.request(
            "POST", "/v1/solve_batch", {"requests": bodies}
        )
        assert status == 200
        payload = json.loads(raw)
        assert payload["endpoint"] == "solve_batch"
        assert payload["count"] == len(bodies)
        singles = [
            json.loads(client.request("POST", "/v1/solve", b)[2])
            for b in bodies
        ]
        assert payload["results"] == singles

    def test_warm_repeat_is_byte_identical(self, service):
        client = ServiceClient(service.url)
        body = {"requests": _bodies(4)}
        first = client.request("POST", "/v1/solve_batch", body)
        second = client.request("POST", "/v1/solve_batch", body)
        assert first[0] == second[0] == 200
        assert first[2] == second[2]

    def test_bad_item_answers_400_with_index(self, service):
        client = ServiceClient(service.url)
        status, _, raw = client.request(
            "POST",
            "/v1/solve_batch",
            {"requests": [dict(FAST_BODY), {"case": "24-12-6-3"}]},
        )
        assert status == 400
        payload = json.loads(raw)
        assert payload["index"] == 1
        assert "te_core_days" in payload["error"]

    def test_batch_counts_one_execution_per_unique_key(self, service):
        client = ServiceClient(service.url)
        before = METRICS.counter("service.executions").value
        bodies = _bodies(3) + _bodies(3)  # 3 unique keys, twice each
        status, _, _ = client.request(
            "POST", "/v1/solve_batch", {"requests": bodies}
        )
        assert status == 200
        assert METRICS.counter("service.executions").value - before == 3.0

    def test_get_answers_405(self, service):
        client = ServiceClient(service.url)
        status, _, _ = client.request("GET", "/v1/solve_batch")
        assert status == 405
