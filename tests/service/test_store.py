"""Tests for the persistent result store (repro.service.store)."""

from __future__ import annotations

import threading

import pytest

from repro.core.memo import SOLVER_CACHE, canonical_key
from repro.service.store import MISS, ResultStore, key_digest, schema_hash


@pytest.fixture
def store_path(tmp_path):
    return tmp_path / "results.sqlite"


class TestResultStore:
    def test_roundtrip(self, store_path):
        with ResultStore(store_path) as store:
            key = canonical_key("solve", 1.5, "8-4-2-1")
            assert store.get(key) is MISS
            store.put(key, {"answer": (1.0, 2.0)})
            assert store.get(key) == {"answer": (1.0, 2.0)}
            assert len(store) == 1

    def test_survives_reopen(self, store_path):
        key = canonical_key("solve", 2.5)
        with ResultStore(store_path) as store:
            store.put(key, [1, 2, 3])
        with ResultStore(store_path) as store:
            assert store.get(key) == [1, 2, 3]

    def test_first_writer_wins(self, store_path):
        key = canonical_key("k")
        with ResultStore(store_path) as store:
            store.put(key, "first")
            store.put(key, "second")  # ignored: persisted bytes are stable
            assert store.get(key) == "first"

    def test_version_isolation(self, store_path):
        key = canonical_key("k")
        with ResultStore(store_path, version="v1") as store:
            store.put(key, "v1-value")
        with ResultStore(store_path, version="v2") as store:
            assert store.get(key) is MISS
            store.put(key, "v2-value")
        with ResultStore(store_path, version="v1") as store:
            assert store.get(key) == "v1-value"
            assert len(store) == 1  # only v1 rows visible

    def test_clear_only_drops_own_version(self, store_path):
        key = canonical_key("k")
        with ResultStore(store_path, version="a") as store:
            store.put(key, 1)
        with ResultStore(store_path, version="b") as store:
            store.put(key, 2)
            store.clear()
            assert store.get(key) is MISS
        with ResultStore(store_path, version="a") as store:
            assert store.get(key) == 1

    def test_thread_safety_smoke(self, store_path):
        with ResultStore(store_path) as store:
            def work(i: int) -> None:
                for j in range(20):
                    store.put(canonical_key(i, j), (i, j))
                    assert store.get(canonical_key(i, j)) == (i, j)

            threads = [
                threading.Thread(target=work, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(store) == 8 * 20

    def test_in_memory_store(self):
        with ResultStore(":memory:") as store:
            store.put(canonical_key("k"), 42)
            assert store.get(canonical_key("k")) == 42


class TestKeying:
    def test_key_digest_stable_for_equal_keys(self):
        a = canonical_key("solve", 0.25, ("x", 1))
        b = canonical_key("solve", 0.25, ("x", 1))
        assert key_digest(a) == key_digest(b)

    def test_key_digest_differs_for_different_keys(self):
        assert key_digest(canonical_key("a")) != key_digest(canonical_key("b"))

    def test_schema_hash_is_deterministic(self):
        assert schema_hash() == schema_hash()
        assert len(schema_hash()) == 16


class TestMemoLayering:
    """The store attached under SOLVER_CACHE (the service's cold path)."""

    def test_miss_falls_through_to_store(self, store_path):
        store = ResultStore(store_path)
        key = canonical_key("expensive")
        store.put(key, "disk-value")
        SOLVER_CACHE.attach_store(store)
        value = SOLVER_CACHE.get_or_compute(
            key, lambda: pytest.fail("must not recompute: store has it")
        )
        assert value == "disk-value"
        stats = SOLVER_CACHE.stats()
        assert stats.persist_hits == 1
        assert stats.size == 1  # promoted into memory

    def test_memory_hit_after_promotion_skips_store(self, store_path):
        store = ResultStore(store_path)
        key = canonical_key("expensive")
        store.put(key, "disk-value")
        SOLVER_CACHE.attach_store(store)
        SOLVER_CACHE.get_or_compute(key, lambda: None)
        store.close()  # a memory hit must not touch the closed store
        assert SOLVER_CACHE.get_or_compute(key, lambda: None) == "disk-value"

    def test_compute_writes_through(self, store_path):
        store = ResultStore(store_path)
        SOLVER_CACHE.attach_store(store)
        key = canonical_key("computed")
        SOLVER_CACHE.get_or_compute(key, lambda: {"v": 7})
        SOLVER_CACHE.clear()  # "restart": memory gone, disk survives
        value = SOLVER_CACHE.get_or_compute(
            key, lambda: pytest.fail("must come from disk")
        )
        assert value == {"v": 7}

    def test_bypass_skips_the_store_entirely(self, store_path):
        store = ResultStore(store_path)
        SOLVER_CACHE.attach_store(store)
        key = canonical_key("bypassed")
        with SOLVER_CACHE.bypass():
            SOLVER_CACHE.get_or_compute(key, lambda: "fresh")
        assert store.get(key) is MISS
        assert len(store) == 0

    def test_detach_restores_memory_only_behaviour(self, store_path):
        store = ResultStore(store_path)
        SOLVER_CACHE.attach_store(store)
        SOLVER_CACHE.detach_store(store)
        key = canonical_key("after-detach")
        SOLVER_CACHE.get_or_compute(key, lambda: 1)
        assert store.get(key) is MISS
