"""SLO burn-rate health states, trace endpoints, and exemplars end to end.

The acceptance behavior for the fleet trace/SLO work: under overload the
service's ``/healthz`` transitions to ``degraded``/``critical`` via the
burn-rate evaluation — liveness never flips, the process is fine — and
recovers to ``ok`` once the fast window drains; the flight recorder
serves completed traces over ``GET /v1/trace/<id>``; histogram buckets
carry trace-id exemplars in ``/metrics.json`` while the Prometheus text
document stays byte-canonical (no exemplar leakage).
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.obs.metrics import METRICS
from repro.obs.sloengine import STATE_SEVERITY, SLOEngine, SLOSpec
from repro.obs.spans import (
    SpanRecorder,
    set_span_recorder,
    span_tree_signature,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import ReproService
from repro.service.supervisor import WorkerSupervisor

BODY = {"te_core_days": 200.0, "case": "24-12-6-3", "ideal_scale": 2000.0}


def _tiny_engine(**overrides) -> SLOEngine:
    kwargs = dict(
        fast_window_s=0.6,
        slow_window_s=1.2,
        min_events=4,
    )
    kwargs.update(overrides)
    return SLOEngine(SLOSpec.parse("99:10s"), **kwargs)


class TestHealthStates:
    def test_healthz_without_slo_has_no_section(self):
        with ReproService(port=0, store_path=None, jobs=1) as svc:
            payload = ServiceClient(svc.url).healthz()
            assert payload["status"] == "ok"
            assert "slo" not in payload

    def test_spec_string_accepted(self):
        with ReproService(
            port=0, store_path=None, jobs=1, slo="99.9:0.25s"
        ) as svc:
            payload = ServiceClient(svc.url).healthz()
            assert payload["status"] == "ok"
            assert payload["slo"]["spec"] == "99.9:0.25s"
            assert payload["slo"]["state"] == "ok"

    def test_overload_degrades_then_recovers(self):
        # Tiny queue + slow handler: most of the flood sheds (429), each
        # shed is a bad event against the SLO, and the burn rate pushes
        # the health state off ok.  Liveness never flips — the process
        # is healthy the whole time; only the SLO view degrades.
        # Windows sized so the whole flood (sheds return instantly, the
        # couple of accepted solves take a few hundred ms) fits inside
        # the fast window, while recovery stays a short wait.
        engine = _tiny_engine(fast_window_s=2.0, slow_window_s=4.0)
        with ReproService(
            port=0,
            store_path=None,
            jobs=1,
            queue_max=1,
            request_delay_s=0.05,
            slo=engine,
        ) as svc:
            client = ServiceClient(svc.url)

            def flood(n: int = 24) -> None:
                # Distinct bodies per request — identical ones would
                # coalesce into a single execution and never fill the
                # queue.
                threads = [
                    threading.Thread(
                        target=lambda i=i: client.request(
                            "POST",
                            "/v1/solve",
                            {**BODY, "te_core_days": 200.0 + i},
                        )
                    )
                    for i in range(n)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()

            flood()
            payload = client.healthz()
            assert payload["slo"]["state"] in ("degraded", "critical")
            # The burn-rate state IS the reported status: an operator
            # polling /healthz sees the SLO view, not bare liveness.
            assert payload["status"] == payload["slo"]["state"]
            assert payload["slo"]["windows"]["fast"]["bad"] > 0

            # Recovery: the fast window (2 s) drains and the state
            # returns to ok without waiting out the slow window.
            time.sleep(2.1)
            payload = client.healthz()
            assert payload["status"] == "ok"
            assert payload["slo"]["state"] == "ok"

    def test_healthz_matches_published_gauges(self):
        with ReproService(
            port=0, store_path=None, jobs=1, slo=_tiny_engine()
        ) as svc:
            client = ServiceClient(svc.url)
            for _ in range(3):
                client.solve(**BODY)
            metrics = client.metrics()["metrics"]
            view = client.healthz()["slo"]
            assert metrics["service.slo.state"] == float(
                STATE_SEVERITY[view["state"]]
            )
            assert metrics["service.slo.good_total"] == view["budget"]["good"]
            assert metrics["service.slo.bad_total"] == view["budget"]["bad"]
            assert metrics["service.slo.budget_consumed"] == pytest.approx(
                view["budget"]["consumed"]
            )

    def test_supervisor_probe_accepts_slo_states(self):
        # degraded/critical mean "alive but burning budget" — restarting
        # the worker would dump its cache and make the burn worse.
        for status in ("ok", "draining", "degraded", "critical"):
            assert WorkerSupervisor._probe_healthy_status(status)
        assert not WorkerSupervisor._probe_healthy_status("gone")


class TestTraceEndpoints:
    def test_trace_404_hints_when_recording_off(self):
        with ReproService(port=0, store_path=None, jobs=1) as svc:
            with pytest.raises(ServiceError) as excinfo:
                ServiceClient(svc.url).trace("00" * 16)
            assert excinfo.value.status == 404
            assert "recording is off" in str(excinfo.value)

    def test_trace_query_and_recent(self, tmp_path):
        previous = set_span_recorder(
            SpanRecorder(tmp_path / "spans.jsonl")
        )
        try:
            with ReproService(port=0, store_path=None, jobs=1) as svc:
                client = ServiceClient(svc.url)
                client.solve(**BODY)
                recent = client.debug_recent()
                assert recent["recording"] is True
                assert recent["flight"]["completed"] >= 1
                trace_id = recent["recent"][0]["trace_id"]

                payload = client.trace(trace_id)
                assert payload["trace_id"] == trace_id
                names = {s["name"] for s in payload["spans"]}
                assert "server.request" in names
                assert payload["span_count"] == len(payload["spans"])

                with pytest.raises(ServiceError) as excinfo:
                    client.trace("ff" * 16)
                assert excinfo.value.status == 404
        finally:
            set_span_recorder(previous)

    def test_online_trace_matches_file(self, tmp_path):
        # The flight-recorded spans and the JSONL sink must describe the
        # same tree: identical span_tree_signature for the trace.
        from repro.obs.spans import read_spans_jsonl, span_from_dict

        sink = tmp_path / "spans.jsonl"
        previous = set_span_recorder(SpanRecorder(sink))
        try:
            with ReproService(port=0, store_path=None, jobs=1) as svc:
                client = ServiceClient(svc.url)
                client.solve(**BODY)
                trace_id = client.debug_recent()["recent"][0]["trace_id"]
                online = [
                    span_from_dict(s)
                    for s in client.trace(trace_id)["spans"]
                ]
        finally:
            set_span_recorder(previous)
        offline = [
            s for s in read_spans_jsonl(sink) if s.trace_id == trace_id
        ]
        assert span_tree_signature(online) == span_tree_signature(offline)


class TestExemplars:
    def test_metrics_json_carries_exemplars_text_does_not(self, tmp_path):
        previous = set_span_recorder(
            SpanRecorder(tmp_path / "spans.jsonl")
        )
        try:
            with ReproService(port=0, store_path=None, jobs=1) as svc:
                client = ServiceClient(svc.url)
                client.solve(**BODY)
                entry = client.metrics()["metrics"][
                    "service.request_seconds.solve"
                ]
                exemplars = entry["exemplars"]
                assert exemplars  # the request left at least one behind
                # Each bucket's exemplar links a worst-recent latency to
                # its trace (the registry is process-global, so an
                # earlier, slower request may rightfully hold the slot).
                for bucket, cell in exemplars.items():
                    assert set(cell) == {"value", "trace_id"}
                    assert len(cell["trace_id"]) == 32
                    int(cell["trace_id"], 16)
                    assert cell["value"] >= 0.0
                # Prometheus 0.0.4 has no exemplar syntax: the text
                # document must not change shape when exemplars exist.
                text = client.metrics_text()
                assert "exemplar" not in text
                for cell in exemplars.values():
                    assert cell["trace_id"] not in text
        finally:
            set_span_recorder(previous)
