"""Tests for the coalescing scheduler (repro.service.scheduler)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.metrics import METRICS
from repro.service.scheduler import (
    CoalescingScheduler,
    ServiceClosed,
    ServiceOverloaded,
)


def _counter(name: str) -> float:
    return METRICS.counter(name).value


def _wait_until(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            pytest.fail("condition not reached within timeout")
        time.sleep(0.005)


class TestBasics:
    def test_submit_returns_compute_result(self):
        with CoalescingScheduler(queue_max=4) as sched:
            assert sched.submit("k", lambda: 41 + 1) == 42

    def test_compute_exception_reaches_the_waiter(self):
        with CoalescingScheduler(queue_max=4) as sched:
            with pytest.raises(ValueError, match="boom"):
                sched.submit("k", lambda: (_ for _ in ()).throw(ValueError("boom")))

    def test_distinct_keys_all_execute(self):
        with CoalescingScheduler(queue_max=16, jobs=2) as sched:
            results = [sched.submit(i, lambda i=i: i * i) for i in range(8)]
        assert results == [i * i for i in range(8)]

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            CoalescingScheduler(queue_max=0)
        with pytest.raises(ValueError):
            CoalescingScheduler(batch_max=0)


class TestCoalescing:
    def test_duplicate_in_flight_requests_share_one_execution(self):
        gate = threading.Event()
        calls: list[int] = []

        def slow():
            gate.wait(5)
            calls.append(1)
            return "shared"

        before = _counter("service.coalesced")
        results: list[str] = []
        with CoalescingScheduler(queue_max=4, jobs=2) as sched:
            threads = [
                threading.Thread(target=lambda: results.append(sched.submit("k", slow)))
                for _ in range(6)
            ]
            for t in threads:
                t.start()
            _wait_until(
                lambda: _counter("service.coalesced") - before >= 5.0
            )
            gate.set()
            for t in threads:
                t.join()
        assert len(calls) == 1  # exactly one execution
        assert results == ["shared"] * 6  # the shared object fans out
        assert _counter("service.coalesced") - before == 5.0

    def test_completed_key_is_not_coalesced_again(self):
        calls: list[int] = []
        with CoalescingScheduler(queue_max=4) as sched:
            sched.submit("k", lambda: calls.append(1))
            sched.submit("k", lambda: calls.append(1))
        # After completion the key leaves the pending map: the second
        # submit re-executes (the memo layer, not the scheduler, is the
        # long-term dedup).
        assert len(calls) == 2


class TestBackpressure:
    def test_full_queue_raises_overloaded(self):
        gate = threading.Event()

        def blocked():
            gate.wait(5)
            return None

        sched = CoalescingScheduler(
            queue_max=1, batch_max=1, jobs=1, retry_after=2.5
        )
        try:
            t1 = threading.Thread(target=lambda: sched.submit("a", blocked))
            t1.start()
            _wait_until(lambda: sched.in_flight() == 1 and sched.queue_depth() == 0)
            t2 = threading.Thread(target=lambda: sched.submit("b", blocked))
            t2.start()
            _wait_until(lambda: sched.queue_depth() == 1)
            with pytest.raises(ServiceOverloaded) as excinfo:
                sched.submit("c", blocked)
            assert excinfo.value.retry_after == 2.5
            # A duplicate of a queued key still coalesces even when full.
            t3 = threading.Thread(target=lambda: sched.submit("b", blocked))
            t3.start()
            gate.set()
            for t in (t1, t2, t3):
                t.join()
        finally:
            gate.set()
            sched.close()

    def test_rejection_increments_metric(self):
        gate = threading.Event()
        before = _counter("service.rejected")
        sched = CoalescingScheduler(queue_max=1, batch_max=1, jobs=1)
        try:
            t = threading.Thread(
                target=lambda: sched.submit("a", lambda: gate.wait(5))
            )
            t.start()
            _wait_until(lambda: sched.in_flight() == 1 and sched.queue_depth() == 0)
            threading.Thread(
                target=lambda: sched.submit("b", lambda: gate.wait(5))
            ).start()
            _wait_until(lambda: sched.queue_depth() == 1)
            with pytest.raises(ServiceOverloaded):
                sched.submit("c", lambda: None)
            assert _counter("service.rejected") - before == 1.0
        finally:
            gate.set()
            sched.close()


class TestShutdown:
    def test_drain_finishes_queued_work(self):
        gate = threading.Event()
        done: list[int] = []
        sched = CoalescingScheduler(queue_max=16, batch_max=2, jobs=1)

        def compute(i: int) -> None:
            gate.wait(5)
            done.append(i)

        threads = [
            threading.Thread(
                target=lambda i=i: sched.submit(i, lambda i=i: compute(i))
            )
            for i in range(6)
        ]
        for t in threads:
            t.start()
        _wait_until(lambda: sched.in_flight() == 6)
        closer = threading.Thread(target=lambda: sched.close(drain=True))
        closer.start()
        gate.set()
        closer.join(10)
        assert not closer.is_alive()
        for t in threads:
            t.join()
        assert sorted(done) == list(range(6))

    def test_submit_after_close_raises(self):
        sched = CoalescingScheduler(queue_max=4)
        sched.close()
        with pytest.raises(ServiceClosed):
            sched.submit("k", lambda: 1)

    def test_non_drain_close_fails_queued_entries(self):
        gate = threading.Event()
        errors: list[BaseException] = []
        results: list[object] = []
        sched = CoalescingScheduler(queue_max=8, batch_max=1, jobs=1)

        def submit(key):
            try:
                results.append(sched.submit(key, lambda: gate.wait(5)))
            except BaseException as exc:  # noqa: BLE001 - recorded for asserts
                errors.append(exc)

        t1 = threading.Thread(target=submit, args=("running",))
        t1.start()
        _wait_until(lambda: sched.in_flight() == 1 and sched.queue_depth() == 0)
        t2 = threading.Thread(target=submit, args=("queued",))
        t2.start()
        _wait_until(lambda: sched.queue_depth() == 1)
        gate.set()
        sched.close(drain=False)
        t1.join()
        t2.join()
        # The running entry finished; the queued one was abandoned.
        assert len(results) == 1
        assert len(errors) == 1
        assert isinstance(errors[0], ServiceClosed)

    def test_close_is_idempotent(self):
        sched = CoalescingScheduler(queue_max=4)
        sched.close()
        sched.close()
