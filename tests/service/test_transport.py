"""Transport-layer tests: pooling, replay-once, invalidation, escape hatch.

Exercises :mod:`repro.service.transport` against both a real
:class:`~repro.service.server.ReproService` (reuse, exhaustion, probes,
encoded fast path) and scripted raw-socket servers that misbehave in
exactly one way each (idle close, mid-roundtrip close, close-on-accept)
so the stale-socket contract — replay **once** and only on a *reused*
connection — is pinned down deterministically.
"""

from __future__ import annotations

import http.client
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs.metrics import METRICS
from repro.service.client import ServiceClient
from repro.service.server import ReproService
from repro.service.supervisor import WorkerSupervisor
from repro.service.transport import (
    HeaderMap,
    PooledTransport,
    TRANSPORT,
    keepalive_enabled,
)

from tests.service.conftest import FAST_BODY


# --------------------------------------------------------------------------
# HeaderMap
# --------------------------------------------------------------------------


class TestHeaderMap:
    def test_case_insensitive_first_value(self):
        headers = HeaderMap(
            [("Retry-After", "1"), ("retry-after", "2"), ("X-Other", "y")]
        )
        assert headers["Retry-After"] == "1"
        assert headers["retry-after"] == "1"
        assert headers["RETRY-AFTER"] == "1"
        assert headers.get("Retry-After") == "1"
        assert headers.get("absent") is None

    def test_get_all_preserves_wire_order(self):
        headers = HeaderMap([("Set-Cookie", "a=1"), ("set-cookie", "b=2")])
        assert headers.get_all("SET-COOKIE") == ("a=1", "b=2")
        assert headers.get_all("absent") == ()
        assert headers.items_raw() == (("Set-Cookie", "a=1"), ("set-cookie", "b=2"))

    def test_iteration_and_dict_round_trip(self):
        headers = HeaderMap(
            [("Content-Type", "application/json"), ("content-TYPE", "x"), ("A", "b")]
        )
        # Distinct names once each, first-seen casing; dict() gives the
        # familiar single-valued view (first value wins).
        assert list(headers) == ["Content-Type", "A"]
        assert len(headers) == 2
        assert dict(headers) == {"Content-Type": "application/json", "A": "b"}

    def test_missing_name_raises(self):
        with pytest.raises(KeyError):
            HeaderMap([("A", "b")])["nope"]


# --------------------------------------------------------------------------
# keepalive switch
# --------------------------------------------------------------------------


class TestKeepaliveSwitch:
    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KEEPALIVE", "0")
        assert keepalive_enabled(True) is True
        monkeypatch.setenv("REPRO_KEEPALIVE", "1")
        assert keepalive_enabled(False) is False

    def test_env_falsey_values(self, monkeypatch):
        for value in ("0", "false", "no", "off", " OFF "):
            monkeypatch.setenv("REPRO_KEEPALIVE", value)
            assert keepalive_enabled() is False
        monkeypatch.setenv("REPRO_KEEPALIVE", "1")
        assert keepalive_enabled() is True
        monkeypatch.delenv("REPRO_KEEPALIVE")
        assert keepalive_enabled() is True


# --------------------------------------------------------------------------
# Scripted raw-socket servers (one misbehavior each)
# --------------------------------------------------------------------------


def _read_request(conn: socket.socket) -> bytes:
    """Read one bodiless request head; b"" means the client hung up."""
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = conn.recv(65536)
        if not chunk:
            return b""
        data += chunk
    return data


def _send_200(conn: socket.socket, body: bytes = b"ok") -> None:
    conn.sendall(
        b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n"
        b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
    )


class _ScriptedServer:
    """Accept loop running ``script(conn_index, conn)`` per connection."""

    def __init__(self, script):
        self._script = script
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.port = self._listener.getsockname()[1]
        self.url = f"http://127.0.0.1:{self.port}"
        self._stop = False
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self):
        index = 0
        while not self._stop:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            try:
                self._script(index, conn)
            finally:
                conn.close()
            index += 1

    def close(self):
        self._stop = True
        self._listener.close()
        self._thread.join(timeout=5)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class TestStaleSocketContract:
    def test_mid_roundtrip_close_replays_exactly_once(self):
        """Server answers request 1, then eats request 2 and hangs up:
        the transport must replay once on a fresh connection, invisibly."""

        def script(index, conn):
            if index == 0:
                assert _read_request(conn)
                _send_200(conn, b"first")
                # Read the next request off the kept-alive socket, then
                # close WITHOUT answering — the classic idle-close race.
                _read_request(conn)
            else:
                assert _read_request(conn)
                _send_200(conn, b"replayed")

        transport = PooledTransport()
        with _ScriptedServer(script) as server:
            status, _, raw = transport.request("GET", f"{server.url}/a")
            assert (status, raw) == (200, b"first")
            status, _, raw = transport.request("GET", f"{server.url}/b")
            assert (status, raw) == (200, b"replayed")
        stats = transport.stats()
        assert stats["replays"] == 1
        assert stats["reused"] == 1
        assert stats["opened"] == 2
        transport.close()

    def test_fresh_connection_failure_surfaces_raw(self):
        """Close-on-accept: a *fresh* connection's failure must raise —
        never replay — so the client retry budget keeps its meaning."""

        def script(index, conn):
            _read_request(conn)
            # close without answering (handled by _ScriptedServer)

        transport = PooledTransport()
        with _ScriptedServer(script) as server:
            with pytest.raises(http.client.RemoteDisconnected):
                transport.request("GET", f"{server.url}/a")
        stats = transport.stats()
        assert stats["replays"] == 0
        assert stats["reused"] == 0
        transport.close()

    def test_idle_close_detected_at_acquire(self):
        """Server closes the pooled socket while it idles: the acquire
        liveness check must replace it without an error or a replay."""

        def script(index, conn):
            assert _read_request(conn)
            _send_200(conn)
            # returning closes the socket -> EOF reaches the idle pool

        transport = PooledTransport()
        with _ScriptedServer(script) as server:
            assert transport.request("GET", f"{server.url}/a")[0] == 200
            time.sleep(0.1)  # let the FIN land before the next acquire
            assert transport.request("GET", f"{server.url}/b")[0] == 200
        stats = transport.stats()
        assert stats["replaced"] == 1
        assert stats["replays"] == 0
        assert stats["opened"] == 2
        transport.close()


# --------------------------------------------------------------------------
# Pooling against a real service
# --------------------------------------------------------------------------


class TestPooling:
    def test_sequential_requests_reuse_one_connection(self):
        transport = PooledTransport()
        with ReproService(port=0, store_path=None) as svc:
            for _ in range(10):
                status, _, _ = transport.request("GET", f"{svc.url}/healthz")
                assert status == 200
            stats = transport.stats()
        assert stats["opened"] == 1
        assert stats["reused"] == 9
        assert stats["reuse_ratio"] == 0.9
        transport.close()

    def test_pool_exhaustion_under_concurrency(self):
        """More concurrent requests than the idle bound: everything
        succeeds, surplus connections are discarded on release, and the
        idle pool never exceeds ``pool_size``."""
        n_threads = 8
        transport = PooledTransport(pool_size=2)
        barrier = threading.Barrier(n_threads)

        with ReproService(port=0, store_path=None, jobs=2) as svc:
            def worker():
                barrier.wait(timeout=10)
                for _ in range(3):
                    status, _, _ = transport.request(
                        "GET", f"{svc.url}/healthz", timeout=10.0
                    )
                    assert status == 200

            with ThreadPoolExecutor(max_workers=n_threads) as pool:
                futures = [pool.submit(worker) for _ in range(n_threads)]
                for future in futures:
                    future.result(timeout=30)

            origin = ("http", svc.host, svc.port)
            idle = len(transport._pools.get(origin, ()))
            stats = transport.stats()
        assert idle <= 2
        assert stats["discarded"] > 0
        assert stats["opened"] + stats["reused"] == n_threads * 3
        transport.close()

    def test_invalidate_drops_pooled_connections(self):
        transport = PooledTransport()
        with ReproService(port=0, store_path=None) as svc:
            assert transport.request("GET", f"{svc.url}/healthz")[0] == 200
            assert transport.invalidate(svc.url) == 1
            assert transport.invalidate(svc.url) == 0  # already empty
            # The transport stays usable: next request opens fresh.
            assert transport.request("GET", f"{svc.url}/healthz")[0] == 200
        stats = transport.stats()
        assert stats["invalidated"] == 1
        assert stats["opened"] == 2
        transport.close()

    def test_no_keepalive_escape_hatch(self, monkeypatch):
        """``REPRO_KEEPALIVE=0`` degrades to one connection per request;
        an explicit ``keepalive=False`` client does the same."""
        monkeypatch.setenv("REPRO_KEEPALIVE", "0")
        transport = PooledTransport()
        with ReproService(port=0, store_path=None) as svc:
            for _ in range(3):
                assert transport.request("GET", f"{svc.url}/healthz")[0] == 200
            monkeypatch.delenv("REPRO_KEEPALIVE")
            client = ServiceClient(svc.url, keepalive=False, transport=transport)
            assert client.healthz()["status"] in ("ok", "degraded", "critical")
        stats = transport.stats()
        assert stats["reused"] == 0
        assert stats["opened"] == 4
        assert stats["discarded"] == 4
        transport.close()


# --------------------------------------------------------------------------
# Supervisor probes ride the pool
# --------------------------------------------------------------------------


class _FakeAliveProcess:
    def poll(self):
        return None


class TestSupervisorProbes:
    def test_probe_loop_does_not_grow_connections(self):
        """N health probes against a live worker must not open N sockets:
        after the first probe warms the channel, opened stays flat."""
        supervisor = WorkerSupervisor(1)
        handle = supervisor.workers[0]
        handle.process = _FakeAliveProcess()
        with ReproService(port=0, store_path=None) as svc:
            handle.port = svc.port
            supervisor._probe(handle)  # warm the pooled channel
            assert handle.probe_failures == 0
            before = TRANSPORT.stats()
            for _ in range(10):
                supervisor._probe(handle)
            after = TRANSPORT.stats()
            assert handle.probe_failures == 0
        assert after["opened"] == before["opened"]
        assert after["reused"] - before["reused"] >= 10
        TRANSPORT.invalidate(svc.url)


# --------------------------------------------------------------------------
# Encoded-response fast path
# --------------------------------------------------------------------------


class TestEncodedFastPath:
    def test_cached_bytes_identical_to_slow_path(self):
        """The memoized encoding must be byte-for-byte what a fresh
        ``canonical_json`` serialization produces — proven end to end by
        comparing a cache-miss response with its cache-hit repeat."""
        with ReproService(port=0, store_path=None) as svc:
            client = ServiceClient(svc.url)
            hits_before = METRICS.counter("service.encoded.hits").value
            status, _, first = client.request("POST", "/v1/solve", FAST_BODY)
            assert status == 200
            status, _, second = client.request("POST", "/v1/solve", FAST_BODY)
            assert status == 200
            hits_after = METRICS.counter("service.encoded.hits").value
            TRANSPORT.invalidate(svc.url)
        assert first == second
        assert hits_after - hits_before >= 1

    def test_cache_disabled_service_still_byte_identical(self):
        """A service with the encoded cache off must answer with the
        same bytes — the fast path is an encoding shortcut, not a
        different serialization."""
        with ReproService(port=0, store_path=None) as svc:
            client = ServiceClient(svc.url)
            _, _, cached = client.request("POST", "/v1/solve", FAST_BODY)
            _, _, cached2 = client.request("POST", "/v1/solve", FAST_BODY)
            TRANSPORT.invalidate(svc.url)
        from repro.core.memo import SOLVER_CACHE

        SOLVER_CACHE.clear()
        with ReproService(port=0, store_path=None, encoded_cache_entries=0) as svc:
            client = ServiceClient(svc.url)
            _, _, uncached = client.request("POST", "/v1/solve", FAST_BODY)
            TRANSPORT.invalidate(svc.url)
        assert cached == cached2 == uncached
