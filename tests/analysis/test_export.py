"""Tests for CSV figure-data export."""

import csv

import pytest

from repro.analysis.export import export_fig1, export_fig3, export_fig5, write_csv
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig5 import run_fig5


def _read(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


def test_write_csv_roundtrip(tmp_path):
    path = write_csv(tmp_path / "out.csv", ["a", "b"], [[1, 2], [3, 4]])
    rows = _read(path)
    assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]


def test_write_csv_creates_parents(tmp_path):
    path = write_csv(tmp_path / "deep/nested/out.csv", ["x"], [[1]])
    assert path.exists()


def test_write_csv_row_validation(tmp_path):
    with pytest.raises(ValueError, match="row 0"):
        write_csv(tmp_path / "bad.csv", ["a", "b"], [[1]])


def test_export_fig1(tmp_path):
    result = run_fig1(n_points=8)
    path = export_fig1(result, tmp_path / "fig1.csv")
    rows = _read(path)
    assert rows[0] == [
        "scale",
        "performance_no_checkpoint",
        "performance_with_checkpoint",
    ]
    assert len(rows) == 9


def test_export_fig3(tmp_path):
    result = run_fig3()
    paths = export_fig3(result, tmp_path / "fig3")
    assert len(paths) == 4
    names = {p.name for p in paths}
    assert names == {
        "fig3_constant_x.csv",
        "fig3_constant_n.csv",
        "fig3_linear_x.csv",
        "fig3_linear_n.csv",
    }
    rows = _read(paths[0])
    assert rows[0] == ["x", "expected_wallclock"]
    assert len(rows) == 34  # 33 sweep points + header


def test_export_fig5(tmp_path):
    result = run_fig5(cases=("4-2-1-0.5",), n_runs=2, seed=0)
    path = export_fig5(result, tmp_path / "fig5.csv")
    rows = _read(path)
    assert rows[0][:2] == ["case", "strategy"]
    assert len(rows) == 1 + 4  # header + 4 strategies
    strategies = {r[1] for r in rows[1:]}
    assert "ml-opt-scale" in strategies
