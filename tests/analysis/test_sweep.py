"""Tests for objective-surface sweeps."""

import numpy as np
import pytest

from repro.analysis.sweep import sweep_objective_intervals, sweep_objective_scale
from repro.core.solutions import ml_opt_scale


def test_scale_sweep_valley_at_optimum(small_params):
    sol = ml_opt_scale(small_params)
    scales = np.linspace(sol.scale * 0.5, small_params.scale_upper_bound, 21)
    objective = sweep_objective_scale(small_params, sol.intervals, scales)
    best_idx = int(np.argmin(objective))
    # the swept minimum sits near the solved scale
    assert abs(scales[best_idx] - sol.scale) <= (scales[1] - scales[0]) * 1.5
    assert objective[best_idx] <= sol.expected_wallclock * 1.001


def test_interval_sweep_valley_at_optimum(small_params):
    sol = ml_opt_scale(small_params)
    for level in range(1, 5):
        x_star = sol.intervals[level - 1]
        values = np.geomspace(x_star / 3.0, x_star * 3.0, 15)
        objective = sweep_objective_intervals(
            small_params, sol.intervals, sol.scale, level, values
        )
        best = float(np.min(objective))
        assert best >= sol.expected_wallclock * 0.999, f"level {level}"


def test_infeasible_points_reported_inf(paper_params):
    sl = paper_params.single_level()
    # Young-ish intervals at full scale are infeasible for this config
    objective = sweep_objective_scale(sl, [120.0], [1_000_000.0])
    assert np.isinf(objective[0])


def test_interval_sweep_validation(small_params):
    with pytest.raises(ValueError):
        sweep_objective_intervals(small_params, [1.0] * 4, 100.0, 9, [1.0])
    with pytest.raises(ValueError):
        sweep_objective_intervals(small_params, [1.0, 2.0], 100.0, 1, [1.0])
