"""Tests for table rendering."""

from repro.analysis.tables import portions_table, solutions_table
from repro.core.notation import Solution
from repro.sim.metrics import EnsembleResult, SimResult


def _solution(wallclock=86_400.0):
    return Solution(
        intervals=(10.0, 5.0),
        scale=1_000.0,
        expected_wallclock=wallclock,
        mu=(1.0, 0.5),
        strategy="ml-opt-scale",
    )


def _ensemble(completed=True):
    run = SimResult(
        wallclock=86_400.0,
        portions={
            "productive": 60_000.0,
            "checkpoint": 10_000.0,
            "restart": 6_400.0,
            "rollback": 10_000.0,
        },
        failures_per_level=(1, 0),
        checkpoints_per_level=(9, 4),
        completed=completed,
    )
    return EnsembleResult(runs=(run,))


def test_solutions_table_contains_strategies_and_values():
    out = solutions_table({"ml-opt-scale": _solution()}, te_core_seconds=86_400.0)
    assert "ml-opt-scale" in out
    assert "1.0k" in out
    assert "1.00" in out  # one day


def test_solutions_table_marks_infeasible():
    out = solutions_table(
        {"sl-ori-scale": _solution(float("inf"))}, te_core_seconds=86_400.0
    )
    assert "inf" in out


def test_portions_table_shows_all_portions():
    out = portions_table({"ml-opt-scale": _ensemble()}, title="Fig 5")
    assert "Fig 5" in out
    assert "productive" in out and "rollback" in out
    assert "1.00" in out  # wallclock in days


def test_portions_table_marks_censored():
    out = portions_table({"sl-ori-scale": _ensemble(completed=False)})
    assert "censored" in out
