"""Tests for efficiency computation."""

import pytest

from repro.analysis.efficiency import efficiency, efficiency_from_ensemble
from repro.sim.metrics import EnsembleResult, SimResult


def test_definition():
    # (T_e / T_w) / N
    assert efficiency(1e6, 2_000.0, 500.0) == pytest.approx(1.0)
    assert efficiency(1e6, 4_000.0, 500.0) == pytest.approx(0.5)


def test_failure_free_ideal_efficiency_bound():
    """At best, efficiency equals the failure-free parallel efficiency."""
    from repro.speedup.quadratic import QuadraticSpeedup

    speedup = QuadraticSpeedup(kappa=0.46, ideal_scale=1e6)
    n = 400_000.0
    te = 1e9
    wallclock = float(speedup.productive_time(te, n))
    e = efficiency(te, wallclock, n)
    assert e == pytest.approx(float(speedup.efficiency(n)))
    assert e < 0.46  # never exceeds kappa


def test_from_ensemble():
    run = SimResult(
        wallclock=2_000.0,
        portions={"productive": 2_000.0, "checkpoint": 0.0, "restart": 0.0, "rollback": 0.0},
        failures_per_level=(0,),
        checkpoints_per_level=(0,),
    )
    ens = EnsembleResult(runs=(run,))
    assert efficiency_from_ensemble(ens, 1e6, 500.0) == pytest.approx(1.0)


def test_validation():
    with pytest.raises(ValueError):
        efficiency(0.0, 1.0, 1.0)
    with pytest.raises(ValueError):
        efficiency(1.0, 0.0, 1.0)
    with pytest.raises(ValueError):
        efficiency(1.0, 1.0, 0.0)
