"""Tests for the wall-clock/efficiency Pareto analysis."""

import numpy as np
import pytest

from repro.analysis.pareto import ParetoPoint, pareto_sweep
from repro.core.solutions import ml_opt_scale


class TestDominance:
    def test_strict_dominance(self):
        a = ParetoPoint(scale=1, wallclock=10.0, efficiency=0.5)
        b = ParetoPoint(scale=2, wallclock=12.0, efficiency=0.4)
        assert a.dominates(b)
        assert not b.dominates(a)

    def test_tradeoff_points_incomparable(self):
        a = ParetoPoint(scale=1, wallclock=10.0, efficiency=0.4)
        b = ParetoPoint(scale=2, wallclock=12.0, efficiency=0.5)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_equal_points_do_not_dominate(self):
        a = ParetoPoint(scale=1, wallclock=10.0, efficiency=0.5)
        b = ParetoPoint(scale=2, wallclock=10.0, efficiency=0.5)
        assert not a.dominates(b)


class TestSweep:
    def test_frontier_is_nondominated(self, small_params):
        result = pareto_sweep(small_params, n_points=10)
        assert result.frontier
        for p in result.frontier:
            assert not any(
                q.dominates(p) for q in result.points if q is not p
            )

    def test_frontier_sorted_by_wallclock(self, small_params):
        result = pareto_sweep(small_params, n_points=10)
        wallclocks = [p.wallclock for p in result.frontier]
        assert wallclocks == sorted(wallclocks)

    def test_ml_opt_scale_near_frontier(self, small_params):
        """The paper's solution balances both objectives: its scale's sweep
        point is on (or adjacent to) the frontier."""
        result = pareto_sweep(small_params, n_points=16)
        sol = ml_opt_scale(small_params)
        best_wallclock = min(p.wallclock for p in result.points)
        # the solution's wall-clock is the sweep's minimum (it optimizes N)
        assert sol.expected_wallclock <= best_wallclock * 1.01

    def test_efficiency_increases_along_frontier(self, small_params):
        """Frontier structure: accepting a longer wall-clock must buy
        strictly higher efficiency — otherwise the point would be
        dominated (these are the smaller-than-optimal scales, the
        SL(opt-scale) end of the Fig. 7 tradeoff)."""
        result = pareto_sweep(small_params, n_points=12)
        eff = [p.efficiency for p in result.frontier]
        assert all(b > a for a, b in zip(eff[:-1], eff[1:]))
