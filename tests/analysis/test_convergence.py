"""Tests for convergence diagnostics."""

from repro.analysis.convergence import convergence_report
from repro.core.algorithm1 import optimize


def test_report_fields(small_params):
    result = optimize(small_params)
    report = convergence_report(result)
    assert report.outer_iterations == result.outer_iterations
    assert report.inner_iterations_total == result.inner_iterations_total
    assert len(report.mu_residuals) == result.outer_iterations


def test_residuals_decay(small_params):
    """The mu fixed point is a contraction: residuals fall over the tail."""
    result = optimize(small_params)
    report = convergence_report(result)
    assert report.monotone_tail
    assert report.mu_residuals[-1] <= report.mu_residuals[0]
