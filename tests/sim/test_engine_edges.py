"""Edge-case tests for the event engine."""

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.engine import simulate
from repro.sim.failure_injection import ScriptedFailures


def _config(**overrides):
    defaults = dict(
        productive_seconds=400.0,
        intervals=(4, 4),
        checkpoint_costs=(2.0, 6.0),
        recovery_costs=(2.0, 6.0),
        failure_rates=(0.0, 0.0),
        allocation_period=5.0,
        jitter=0.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestCoincidentMarks:
    def test_both_levels_checkpoint_at_shared_marks(self):
        """x_1 = x_2 puts marks at identical progress; both are taken,
        lower level first."""
        result = simulate(_config(), seed=0, injector=ScriptedFailures([]))
        assert result.checkpoints_per_level == (3, 3)
        assert result.portions["checkpoint"] == pytest.approx(3 * 2.0 + 3 * 6.0)

    def test_failure_between_coincident_checkpoints(self):
        """A level-2 failure during the level-2 checkpoint at a shared mark
        rolls back to the *completed* level-2 mark before it (the level-1
        checkpoint just taken at the same mark is destroyed)."""
        # timeline: work to mark 100 (t=100), L1 ckpt [100,102),
        # L2 ckpt [102,108); work to mark 200 at t=208, L1 ckpt [208,210),
        # L2 ckpt [210,216) -- fail at 212, mid-L2-checkpoint at mark 200.
        trace = [(212.0, 2)]
        result = simulate(_config(), seed=0, injector=ScriptedFailures(trace))
        # rollback to the completed L2 checkpoint at mark 100: the L1
        # checkpoint at 200 is destroyed, the L2 one never finished.
        assert result.portions["rollback"] == pytest.approx(100.0)
        assert result.completed


class TestDegenerateTimings:
    def test_failure_at_time_zero(self):
        trace = [(0.0, 1)]
        result = simulate(_config(), seed=0, injector=ScriptedFailures(trace))
        assert result.completed
        assert result.failures_per_level == (1, 0)
        # nothing to roll back
        assert result.portions["rollback"] == 0.0

    def test_zero_cost_checkpoints(self):
        cfg = _config(checkpoint_costs=(0.0, 0.0), recovery_costs=(0.0, 0.0))
        result = simulate(cfg, seed=0, injector=ScriptedFailures([]))
        assert result.wallclock == pytest.approx(400.0)
        assert result.checkpoints_per_level == (3, 3)

    def test_zero_allocation_period(self):
        cfg = _config(allocation_period=0.0)
        trace = [(150.0, 1)]
        result = simulate(cfg, seed=0, injector=ScriptedFailures(trace))
        assert result.portions["restart"] == pytest.approx(2.0)  # recovery only

    def test_simultaneous_failures(self):
        """Two failures at the identical instant: both processed, the
        second lands during (and restarts) the first recovery."""
        trace = [(150.0, 1), (150.0, 2)]
        result = simulate(_config(), seed=0, injector=ScriptedFailures(trace))
        assert result.failures_per_level == (1, 1)
        assert result.completed

    def test_failure_exactly_at_mark_progress(self):
        """A failure exactly when work reaches a mark (checkpoint not yet
        started) loses the whole interval behind it."""
        # work reaches mark 100 at t=100 exactly
        trace = [(100.0, 1)]
        result = simulate(_config(), seed=0, injector=ScriptedFailures(trace))
        assert result.completed
        assert result.portions["rollback"] == pytest.approx(100.0)


class TestBackToBackFailures:
    def test_rapid_failure_storm_eventually_completes(self):
        """A burst of failures in quick succession is survived."""
        trace = [(50.0 + i * 0.5, 1) for i in range(20)]
        result = simulate(_config(), seed=0, injector=ScriptedFailures(trace))
        assert result.completed
        assert result.failures_per_level == (20, 0)
        total = sum(result.portions.values())
        assert total == pytest.approx(result.wallclock)
