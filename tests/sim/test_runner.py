"""Tests for the model-to-simulator bridge."""

import pytest

from repro.core.solutions import ml_opt_scale
from repro.sim.runner import config_from_solution, simulate_solution


def test_config_resolved_at_solution_scale(small_params):
    solution = ml_opt_scale(small_params)
    config = config_from_solution(small_params, solution)
    n = solution.scale_rounded()
    assert config.productive_seconds == pytest.approx(
        small_params.productive_time(n)
    )
    assert config.intervals == solution.intervals_rounded()
    assert config.checkpoint_costs == tuple(
        small_params.costs.checkpoint_costs(n)
    )
    assert config.failure_rates == tuple(
        small_params.rates.rates_per_second(n)
    )
    assert config.allocation_period == small_params.allocation_period


def test_simulated_wallclock_near_model_prediction(small_params):
    """The simulator's mean stays in the neighbourhood of the analytic
    E(T_w) (the model is first-order, so agreement is loose but real)."""
    solution = ml_opt_scale(small_params)
    ensemble = simulate_solution(small_params, solution, n_runs=30, seed=5)
    assert ensemble.mean_wallclock == pytest.approx(
        solution.expected_wallclock, rel=0.35
    )
    assert ensemble.all_completed


def test_max_wallclock_propagated(small_params):
    solution = ml_opt_scale(small_params)
    config = config_from_solution(small_params, solution, max_wallclock=1e6)
    assert config.max_wallclock == 1e6


def test_level_mismatch_rejected(small_params):
    solution = ml_opt_scale(small_params)
    with pytest.raises(ValueError):
        config_from_solution(small_params.single_level(), solution)
