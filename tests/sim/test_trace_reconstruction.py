"""The trace is a faithful replica of the engine's own accounting.

The observability contract: every headline ``SimResult`` quantity —
per-level failure counts, per-level completed-checkpoint counts, and the
Fig. 5 portion decomposition — is reconstructable *purely* from the event
stream, and (for the counts and portions) matches the engine bit for bit.
Scripted failures pin events at every level so each event type is
exercised deterministically; seeded random runs then cover the generic
paths, including censoring and mid-recovery failures.
"""

import pytest

from repro.obs.events import (
    CheckpointDone,
    CheckpointStart,
    Failure,
    RecoveryDone,
    RecoveryStart,
    RunCensored,
    SegmentComplete,
)
from repro.obs.trace import (
    TraceRecorder,
    checkpoint_counts,
    failure_counts,
    portions_from_events,
    wallclock_from_events,
)
from repro.sim.config import SimulationConfig
from repro.sim.engine import simulate
from repro.sim.failure_injection import ScriptedFailures

NUM_LEVELS = 4

#: One scripted failure per level (and a second level-1 strike), timed to
#: land mid-run so rollbacks, recoveries, and aborted checkpoints occur.
ALL_LEVEL_EVENTS = (
    (150.0, 1),
    (400.0, 2),
    (700.0, 3),
    (1100.0, 4),
    (1500.0, 1),
)


@pytest.fixture
def cfg():
    return SimulationConfig(
        productive_seconds=2_000.0,
        intervals=(10, 4, 2, 2),
        checkpoint_costs=(1.0, 2.0, 4.0, 8.0),
        recovery_costs=(1.0, 2.0, 4.0, 8.0),
        failure_rates=(1e-3, 5e-4, 2e-4, 1e-4),
        allocation_period=10.0,
        jitter=0.3,
    )


def traced(cfg, seed, injector=None):
    recorder = TraceRecorder()
    result = simulate(cfg, seed=seed, injector=injector, recorder=recorder)
    return result, recorder.events


class TestScriptedAllLevels:
    def assert_trace_matches(self, result, events):
        assert failure_counts(events, NUM_LEVELS) == result.failures_per_level
        assert (
            checkpoint_counts(events, NUM_LEVELS)
            == result.checkpoints_per_level
        )
        # Bit-exact: both sides fold the identical per-segment floats in
        # the identical order (no tolerance — this is the contract).
        assert portions_from_events(events) == result.portions
        assert wallclock_from_events(events) == pytest.approx(
            result.wallclock, rel=1e-12
        )

    def test_every_level_fails_and_reconstructs(self, cfg):
        result, events = traced(
            cfg, seed=0, injector=ScriptedFailures(ALL_LEVEL_EVENTS)
        )
        assert result.completed
        # The script really did strike every level at least once.
        assert all(n >= 1 for n in result.failures_per_level)
        self.assert_trace_matches(result, events)

    def test_event_sequence_shape(self, cfg):
        result, events = traced(
            cfg, seed=0, injector=ScriptedFailures(ALL_LEVEL_EVENTS)
        )
        failures = [e for e in events if isinstance(e, Failure)]
        recov_starts = [e for e in events if isinstance(e, RecoveryStart)]
        recov_dones = [e for e in events if isinstance(e, RecoveryDone)]
        segments = [e for e in events if isinstance(e, SegmentComplete)]
        assert len(failures) == len(ALL_LEVEL_EVENTS)
        # Every failure triggers at least one recovery attempt; every
        # attempt ends (possibly interrupted).
        assert len(recov_starts) == len(recov_dones)
        assert len(recov_starts) >= len(failures)
        # One segment per failure plus the final completing one.
        assert segments[-1].run_completed
        assert sum(s.run_completed for s in segments) == 1
        # Timestamps are monotone non-decreasing.
        times = [e.t for e in events]
        assert times == sorted(times)

    def test_checkpoint_starts_bound_dones(self, cfg):
        _, events = traced(
            cfg, seed=0, injector=ScriptedFailures(ALL_LEVEL_EVENTS)
        )
        starts = [e for e in events if isinstance(e, CheckpointStart)]
        dones = [e for e in events if isinstance(e, CheckpointDone)]
        # A Start without a Done is an aborted (failure-interrupted) write.
        assert len(dones) <= len(starts)
        assert len(dones) >= 1


@pytest.mark.parametrize("seed", [1, 7, 42, 2014])
def test_random_failures_reconstruct(cfg, seed):
    result, events = traced(cfg, seed=seed)
    assert failure_counts(events, NUM_LEVELS) == result.failures_per_level
    assert checkpoint_counts(events, NUM_LEVELS) == result.checkpoints_per_level
    assert portions_from_events(events) == result.portions


def test_censored_run_emits_run_censored(cfg):
    harsh = SimulationConfig(
        productive_seconds=5_000.0,
        intervals=(4, 2),
        checkpoint_costs=(30.0, 120.0),
        recovery_costs=(30.0, 120.0),
        failure_rates=(2e-3, 1e-3),
        allocation_period=60.0,
        jitter=0.3,
        max_wallclock=20_000.0,
    )
    for seed in range(6):
        result, events = traced(harsh, seed=seed)
        if result.completed:
            continue
        censored = [e for e in events if isinstance(e, RunCensored)]
        assert len(censored) == 1
        assert events[-1] is censored[0]
        assert censored[0].progress < harsh.productive_seconds
        assert portions_from_events(events) == result.portions
        break
    else:  # pragma: no cover - seeds above are known to censor
        pytest.fail("no censored run among the probe seeds")


def test_tracing_is_rng_neutral(cfg):
    untraced = simulate(cfg, seed=123)
    result, _ = traced(cfg, seed=123)
    assert result == untraced


def test_ring_buffer_trace_is_the_tail(cfg):
    full = TraceRecorder()
    ring = TraceRecorder(maxlen=5)
    simulate(cfg, seed=9, recorder=full)
    simulate(cfg, seed=9, recorder=ring)
    assert ring.events == full.events[-5:]
