"""Tests for ensemble running."""

import numpy as np
import pytest

from repro.failures.distributions import WeibullArrivals
from repro.sim.config import SimulationConfig
from repro.sim.ensemble import run_ensemble


@pytest.fixture
def cfg():
    return SimulationConfig(
        productive_seconds=2_000.0,
        intervals=(10, 4, 2, 2),
        checkpoint_costs=(1.0, 2.0, 4.0, 8.0),
        recovery_costs=(1.0, 2.0, 4.0, 8.0),
        failure_rates=(1e-3, 5e-4, 2e-4, 1e-4),
        allocation_period=10.0,
        jitter=0.3,
    )


def test_requested_run_count(cfg):
    ens = run_ensemble(cfg, n_runs=7, seed=0)
    assert ens.n_runs == 7


def test_runs_are_distinct(cfg):
    ens = run_ensemble(cfg, n_runs=10, seed=0)
    wallclocks = ens.wallclocks()
    assert len(np.unique(wallclocks)) > 1


def test_reproducible_from_root_seed(cfg):
    a = run_ensemble(cfg, n_runs=5, seed=123)
    b = run_ensemble(cfg, n_runs=5, seed=123)
    assert np.array_equal(a.wallclocks(), b.wallclocks())


def test_different_seeds_differ(cfg):
    a = run_ensemble(cfg, n_runs=5, seed=1)
    b = run_ensemble(cfg, n_runs=5, seed=2)
    assert not np.array_equal(a.wallclocks(), b.wallclocks())


def test_alternative_process_supported(cfg):
    ens = run_ensemble(cfg, n_runs=5, seed=0, process=WeibullArrivals(0.7))
    assert ens.n_runs == 5
    assert ens.mean_wallclock > 2_000.0


def test_invalid_run_count(cfg):
    with pytest.raises(ValueError):
        run_ensemble(cfg, n_runs=0)
