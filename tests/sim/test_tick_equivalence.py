"""Engine-equivalence ablation: event-driven vs batched vs literal 1 s ticks.

The event engine powers every exascale experiment; the tick engine is the
paper's stated mechanism.  On identical scripted failure traces with zero
jitter, their wall-clocks must agree to within tick-quantization error —
the property that justifies using the fast engine throughout.  The batched
engine rides the same ablation: fed the identical scripted traces it must
match the event engine *exactly* (bit-identity contract) and therefore the
tick engine within the same error bound.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.failures.rates import FailureRates
from repro.failures.traces import generate_trace
from repro.sim.batch import simulate_batch
from repro.sim.config import SimulationConfig
from repro.sim.engine import simulate
from repro.sim.failure_injection import ScriptedFailures
from repro.sim.tick import simulate_ticks
from repro.util.rng import spawn_generators


def _config(**overrides):
    defaults = dict(
        productive_seconds=4_000.0,
        intervals=(20, 10, 5, 3),
        checkpoint_costs=(1.0, 2.5, 4.0, 9.0),
        recovery_costs=(1.0, 2.5, 4.0, 9.0),
        failure_rates=(0.0, 0.0, 0.0, 0.0),
        allocation_period=15.0,
        jitter=0.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def test_failure_free_exact_agreement():
    cfg = _config()
    event = simulate(cfg, seed=0, injector=ScriptedFailures([]))
    tick = simulate_ticks(cfg, seed=0, injector=ScriptedFailures([]))
    assert event.wallclock == pytest.approx(tick.wallclock, abs=1e-6)
    assert event.checkpoints_per_level == tick.checkpoints_per_level


def test_scripted_trace_agreement_within_tick_error():
    cfg = _config()
    trace = [(500.0, 1), (1_500.0, 2), (2_500.0, 4), (3_500.0, 3)]
    event = simulate(cfg, seed=0, injector=ScriptedFailures(trace))
    tick = simulate_ticks(cfg, seed=0, injector=ScriptedFailures(trace))
    assert event.failures_per_level == tick.failures_per_level
    assert abs(event.wallclock - tick.wallclock) <= len(trace) * 1.0 + 1e-6


def test_finer_ticks_converge_to_event_engine():
    cfg = _config()
    trace = [(473.3, 1), (1_234.7, 3), (2_987.1, 2)]
    event = simulate(cfg, seed=0, injector=ScriptedFailures(trace))
    errors = []
    for dt in (4.0, 1.0, 0.25):
        tick = simulate_ticks(cfg, seed=0, dt=dt, injector=ScriptedFailures(trace))
        errors.append(abs(tick.wallclock - event.wallclock))
    assert errors[-1] <= errors[0] + 1e-9
    assert errors[-1] < 1.5


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_random_traces_agree_closely(seed):
    """Random Poisson traces: mean behaviour must match within a few %."""
    cfg = _config()
    rates = FailureRates((40.0, 20.0, 10.0, 5.0), baseline_scale=1_000.0)
    trace = generate_trace(rates, 1_000.0, horizon_seconds=80_000.0, seed=seed)
    event = simulate(cfg, seed=1, injector=ScriptedFailures(trace))
    tick = simulate_ticks(cfg, seed=1, injector=ScriptedFailures(trace))
    # knife-edge divergences possible but rare; bound the relative gap
    assert event.wallclock == pytest.approx(tick.wallclock, rel=0.25)


def test_tick_dt_validation():
    with pytest.raises(ValueError):
        simulate_ticks(_config(), dt=0.0)


def test_batch_engine_joins_the_ablation():
    """Same scripted trace through all three engines: the batch engine is
    bit-identical to the event engine and tick-close to the tick engine."""
    cfg = _config()
    trace = [(500.0, 1), (1_500.0, 2), (2_500.0, 4), (3_500.0, 3)]
    (event_seed,) = spawn_generators(0, 1)
    event = simulate(cfg, seed=event_seed, injector=ScriptedFailures(trace))
    tick = simulate_ticks(cfg, seed=0, injector=ScriptedFailures(trace))
    (batch,) = simulate_batch(
        cfg, spawn_generators(0, 1), injectors=[ScriptedFailures(trace)]
    )
    assert batch == event
    assert abs(batch.wallclock - tick.wallclock) <= len(trace) * 1.0 + 1e-6


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_batch_matches_event_engine_on_random_traces(seed):
    """Random Poisson traces, replicated: batch == event, run for run."""
    cfg = _config()
    rates = FailureRates((40.0, 20.0, 10.0, 5.0), baseline_scale=1_000.0)
    trace = generate_trace(rates, 1_000.0, horizon_seconds=80_000.0, seed=seed)
    n = 4
    event = [
        simulate(cfg, seed=s, injector=ScriptedFailures(trace))
        for s in spawn_generators(seed, n)
    ]
    batch = simulate_batch(
        cfg,
        spawn_generators(seed, n),
        injectors=[ScriptedFailures(trace) for _ in range(n)],
    )
    assert batch == event
