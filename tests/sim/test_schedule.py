"""Tests for the merged checkpoint schedule."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.schedule import CheckpointSchedule


def test_counts_match_formula_21():
    """Level i contributes exactly x_i - 1 scheduled checkpoints."""
    sched = CheckpointSchedule.build(1_000.0, (10, 5, 2, 1))
    counts = sched.counts_per_level(4)
    assert counts.tolist() == [9, 4, 1, 0]
    assert sched.num_marks == 14


def test_equidistant_positions():
    sched = CheckpointSchedule.build(100.0, (4,))
    assert np.allclose(sched.progress, [25.0, 50.0, 75.0])


def test_no_mark_at_completion():
    sched = CheckpointSchedule.build(100.0, (4, 2))
    assert np.all(sched.progress < 100.0)


def test_merged_and_sorted():
    sched = CheckpointSchedule.build(120.0, (4, 3))
    assert np.all(np.diff(sched.progress) >= 0)
    # marks: level1 at 30,60,90; level2 at 40,80
    assert sched.progress.tolist() == [30.0, 40.0, 60.0, 80.0, 90.0]
    assert sched.level.tolist() == [1, 2, 1, 2, 1]


def test_coincident_marks_ordered_by_level():
    sched = CheckpointSchedule.build(100.0, (4, 4))
    # marks coincide at 25/50/75; lower level first at each position
    assert sched.level.tolist() == [1, 2, 1, 2, 1, 2]


def test_marks_after():
    sched = CheckpointSchedule.build(100.0, (4,))
    assert sched.marks_after(0.0) == 0
    assert sched.marks_after(25.0) == 1  # strictly beyond
    assert sched.marks_after(99.0) == 3


def test_single_interval_no_marks():
    sched = CheckpointSchedule.build(100.0, (1, 1))
    assert sched.num_marks == 0


def test_validation():
    with pytest.raises(ValueError):
        CheckpointSchedule.build(0.0, (2,))
    with pytest.raises(ValueError):
        CheckpointSchedule.build(10.0, (0,))


@settings(max_examples=30, deadline=None)
@given(
    intervals=st.lists(
        st.integers(min_value=1, max_value=50), min_size=1, max_size=4
    ),
    productive=st.floats(min_value=10.0, max_value=1e6),
)
def test_schedule_invariants(intervals, productive):
    sched = CheckpointSchedule.build(productive, tuple(intervals))
    assert sched.num_marks == sum(x - 1 for x in intervals)
    assert np.all(sched.progress > 0)
    assert np.all(sched.progress < productive)
    assert np.all(np.diff(sched.progress) >= -1e-9)
    counts = sched.counts_per_level(len(intervals))
    assert counts.tolist() == [x - 1 for x in intervals]
