"""Tests for failure injection."""

import math

import numpy as np
import pytest

from repro.failures.distributions import LognormalArrivals, WeibullArrivals
from repro.sim.failure_injection import FailureInjector, ScriptedFailures


class TestInjector:
    def test_chronological_pops(self):
        injector = FailureInjector([1e-3, 5e-4], seed=0)
        times = [injector.pop()[0] for _ in range(50)]
        assert times == sorted(times)

    def test_levels_one_based(self):
        injector = FailureInjector([1e-3, 1e-3], seed=1)
        levels = {injector.pop()[1] for _ in range(100)}
        assert levels == {1, 2}

    def test_zero_rate_level_never_fires(self):
        injector = FailureInjector([1e-3, 0.0], seed=2)
        levels = {injector.pop()[1] for _ in range(100)}
        assert levels == {1}

    def test_all_zero_rates(self):
        injector = FailureInjector([0.0, 0.0], seed=3)
        t, _ = injector.peek()
        assert math.isinf(t)
        with pytest.raises(RuntimeError):
            injector.pop()

    def test_empirical_rate(self):
        rate = 1e-2
        injector = FailureInjector([rate], seed=4)
        n = 5_000
        last = 0.0
        for _ in range(n):
            last, _ = injector.pop()
        assert n / last == pytest.approx(rate, rel=0.05)

    def test_reproducible(self):
        a = FailureInjector([1e-3], seed=7)
        b = FailureInjector([1e-3], seed=7)
        for _ in range(10):
            assert a.pop() == b.pop()

    def test_peek_does_not_consume(self):
        injector = FailureInjector([1e-3], seed=8)
        assert injector.peek() == injector.peek()

    def test_validation(self):
        with pytest.raises(ValueError):
            FailureInjector([-1e-3])
        with pytest.raises(ValueError):
            FailureInjector([])
        with pytest.raises(ValueError):
            FailureInjector([1e-3], block=0)

    @pytest.mark.parametrize(
        "process",
        [
            None,  # exponential default
            WeibullArrivals(shape=0.7),
            LognormalArrivals(sigma=1.0),
        ],
        ids=["exponential", "weibull", "lognormal"],
    )
    def test_block_size_does_not_change_streams(self, process):
        """Block pre-draws are bit-identical to one-at-a-time draws.

        Every bundled ArrivalProcess fills its output element by element
        from the level's generator, so pre-drawing gaps in chunks of any
        size must consume each per-level stream identically to the
        historical ``size=1`` draw per event.
        """
        rates = [1e-3, 5e-4, 2e-4]
        one_at_a_time = FailureInjector(
            rates, seed=42, process=process, block=1
        )
        blocked = FailureInjector(rates, seed=42, process=process, block=64)
        default = FailureInjector(rates, seed=42, process=process)
        for _ in range(300):
            expected = one_at_a_time.pop()
            assert blocked.pop() == expected
            assert default.pop() == expected


class TestScripted:
    def test_serves_fixed_sequence(self):
        scripted = ScriptedFailures([(1.0, 2), (5.0, 1)])
        assert scripted.pop() == (1.0, 2)
        assert scripted.pop() == (5.0, 1)
        assert math.isinf(scripted.peek()[0])

    def test_accepts_records(self):
        from repro.failures.traces import FailureEventRecord

        scripted = ScriptedFailures([FailureEventRecord(3.0, 4)])
        assert scripted.pop() == (3.0, 4)

    def test_exhausted_pop_raises(self):
        scripted = ScriptedFailures([])
        with pytest.raises(RuntimeError):
            scripted.pop()

    def test_non_chronological_rejected(self):
        with pytest.raises(ValueError):
            ScriptedFailures([(5.0, 1), (1.0, 1)])

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            ScriptedFailures([(1.0, 0)])
