"""Direct unit tests of the literal tick engine (beyond equivalence)."""

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.failure_injection import ScriptedFailures
from repro.sim.tick import simulate_ticks


def _config(**overrides):
    defaults = dict(
        productive_seconds=300.0,
        intervals=(3, 2),
        checkpoint_costs=(2.0, 5.0),
        recovery_costs=(2.0, 5.0),
        failure_rates=(0.0, 0.0),
        allocation_period=4.0,
        jitter=0.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def test_failure_free_timeline_exact():
    # marks: L1 at 100, 200; L2 at 150 -> wallclock = 300 + 2+2+5
    result = simulate_ticks(_config(), seed=0, injector=ScriptedFailures([]))
    assert result.wallclock == pytest.approx(309.0)
    assert result.checkpoints_per_level == (2, 1)
    assert result.completed


def test_portions_partition_wallclock():
    trace = [(120.0, 1), (250.0, 2)]
    result = simulate_ticks(_config(), seed=0, injector=ScriptedFailures(trace))
    assert sum(result.portions.values()) == pytest.approx(result.wallclock)
    assert result.failures_per_level == (1, 1)


def test_level2_failure_erases_level1_checkpoint():
    # L1 ckpt at 100 completes at t=102; L2 failure at t=110 (work phase):
    # no L2 checkpoint exists -> restart from 0 despite the valid-looking
    # L1 checkpoint, which lived on the crashed hardware.
    trace = [(110.0, 2)]
    result = simulate_ticks(_config(), seed=0, injector=ScriptedFailures(trace))
    assert result.portions["rollback"] >= 100.0
    assert result.completed


def test_fractional_costs_not_quantized():
    cfg = _config(checkpoint_costs=(0.25, 0.75), recovery_costs=(1.0, 1.0))
    result = simulate_ticks(cfg, seed=0, injector=ScriptedFailures([]))
    assert result.wallclock == pytest.approx(300.0 + 2 * 0.25 + 0.75)


def test_censoring_at_cap():
    cfg = _config(
        intervals=(1, 2),
        checkpoint_costs=(1.0, 1_000.0),
        recovery_costs=(1.0, 1.0),
        max_wallclock=500.0,
    )
    # repeated failures always interrupt the 1000s L2 checkpoint
    trace = [(float(t), 1) for t in range(160, 10_000, 80)]
    result = simulate_ticks(cfg, seed=0, injector=ScriptedFailures(trace))
    assert not result.completed
    assert result.wallclock <= 501.0


def test_dt_validation():
    with pytest.raises(ValueError):
        simulate_ticks(_config(), dt=-1.0)
