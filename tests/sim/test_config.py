"""Tests for SimulationConfig validation."""

import numpy as np
import pytest

from repro.sim.config import SimulationConfig


def _config(**overrides):
    defaults = dict(
        productive_seconds=1_000.0,
        intervals=(10, 5, 2, 2),
        checkpoint_costs=(1.0, 2.0, 4.0, 8.0),
        recovery_costs=(1.0, 2.0, 4.0, 8.0),
        failure_rates=(1e-4, 5e-5, 2e-5, 1e-5),
        allocation_period=10.0,
        jitter=0.3,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def test_valid_config():
    cfg = _config()
    assert cfg.num_levels == 4
    assert np.array_equal(cfg.checkpoint_cost_array(), [1.0, 2.0, 4.0, 8.0])


def test_single_level_config():
    cfg = _config(
        intervals=(5,),
        checkpoint_costs=(10.0,),
        recovery_costs=(10.0,),
        failure_rates=(1e-4,),
    )
    assert cfg.num_levels == 1


@pytest.mark.parametrize(
    "field,value",
    [
        ("productive_seconds", 0.0),
        ("intervals", ()),
        ("intervals", (0, 1, 1, 1)),
        ("checkpoint_costs", (1.0,)),
        ("checkpoint_costs", (-1.0, 1.0, 1.0, 1.0)),
        ("recovery_costs", (-1.0, 1.0, 1.0, 1.0)),
        ("failure_rates", (-1e-4, 0, 0, 0)),
        ("allocation_period", -1.0),
        ("jitter", 1.0),
        ("jitter", -0.1),
        ("max_wallclock", 0.0),
    ],
)
def test_invalid_configs_rejected(field, value):
    with pytest.raises(ValueError):
        _config(**{field: value})
