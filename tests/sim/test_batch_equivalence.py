"""Batch-vs-serial equivalence: the bit-identity contract of repro.sim.batch.

The batched replica engine must return *exactly* the serial engine's
results — same floats, same counts, same censoring — across the full
behaviour matrix: jitter on/off, exponential and Weibull arrivals,
censored runs, zero-rate levels, and ensemble sizes 1 and 100.  Every
assertion here is strict equality (`SimResult.__eq__` compares the
portion floats and count tuples directly), not approx.
"""

import numpy as np
import pytest

from repro.failures.distributions import LognormalArrivals, WeibullArrivals
from repro.obs.metrics import MetricsRegistry
from repro.sim.batch import simulate_batch
from repro.sim.config import SimulationConfig
from repro.sim.engine import simulate
from repro.sim.ensemble import BATCH_ENV_VAR, resolve_batch, run_ensemble
from repro.sim.failure_injection import ScriptedFailures
from repro.util.rng import spawn_generators

BASE = dict(
    productive_seconds=80_000.0,
    intervals=(160, 64, 32, 16),
    checkpoint_costs=(1.0, 2.5, 4.0, 12.0),
    recovery_costs=(2.0, 5.0, 8.0, 30.0),
    failure_rates=(4e-4, 2e-4, 1e-4, 5e-5),
    allocation_period=30.0,
)

#: (name, config, process) covering the behaviour matrix.
MATRIX = [
    (
        "jitter-exp",
        SimulationConfig(**BASE, jitter=0.3),
        None,
    ),
    (
        "nojitter-exp",
        SimulationConfig(**BASE, jitter=0.0),
        None,
    ),
    (
        "jitter-weibull",
        SimulationConfig(**BASE, jitter=0.3),
        WeibullArrivals(shape=0.7),
    ),
    (
        "jitter-lognormal",
        SimulationConfig(**BASE, jitter=0.3),
        LognormalArrivals(sigma=1.0),
    ),
    (
        "censored",
        SimulationConfig(**BASE, jitter=0.3, max_wallclock=140_000.0),
        None,
    ),
    (
        "zero-rate-levels",
        SimulationConfig(
            **{**BASE, "failure_rates": (0.0, 2e-4, 0.0, 5e-5)}, jitter=0.3
        ),
        None,
    ),
    (
        "no-failures",
        SimulationConfig(
            **{**BASE, "failure_rates": (0.0, 0.0, 0.0, 0.0)}, jitter=0.3
        ),
        None,
    ),
    (
        "single-level",
        SimulationConfig(
            productive_seconds=10_000.0,
            intervals=(25,),
            checkpoint_costs=(3.0,),
            recovery_costs=(10.0,),
            failure_rates=(1e-3,),
            allocation_period=15.0,
            jitter=0.3,
        ),
        None,
    ),
    (
        "harsh-censored",
        SimulationConfig(
            **{**BASE, "failure_rates": (5e-3, 2e-3, 1e-3, 5e-4)},
            jitter=0.3,
            max_wallclock=200_000.0,
        ),
        None,
    ),
]
MATRIX_IDS = [name for name, _, _ in MATRIX]


class TestSimulateBatch:
    @pytest.mark.parametrize("name,config,process", MATRIX, ids=MATRIX_IDS)
    @pytest.mark.parametrize("n_runs", [1, 100])
    def test_bit_identical_to_serial_loop(self, name, config, process, n_runs):
        serial = [
            simulate(config, seed=seed, process=process)
            for seed in spawn_generators(20140604, n_runs)
        ]
        batch = simulate_batch(
            config, spawn_generators(20140604, n_runs), process=process
        )
        assert batch == serial

    def test_censoring_states_match(self):
        config = SimulationConfig(**BASE, jitter=0.3, max_wallclock=140_000.0)
        batch = simulate_batch(config, spawn_generators(11, 50))
        completed = [run.completed for run in batch]
        # The cap genuinely bites for this configuration — both outcomes
        # must occur, or the equivalence above proves nothing.
        assert any(completed) and not all(completed)

    def test_empty_seed_list(self):
        assert simulate_batch(SimulationConfig(**BASE), []) == []

    def test_scripted_injectors(self):
        """The ablation hook: identical scripted traces, identical runs."""
        config = SimulationConfig(**BASE, jitter=0.3)
        events = [(9_000.0, 1), (9_500.0, 2), (40_000.0, 4), (41_000.0, 1)]
        seeds = spawn_generators(5, 8)
        serial = [
            simulate(config, seed=seed, injector=ScriptedFailures(events))
            for seed in seeds
        ]
        batch = simulate_batch(
            config,
            spawn_generators(5, 8),
            injectors=[ScriptedFailures(events) for _ in range(8)],
        )
        assert batch == serial

    def test_injector_count_mismatch_rejected(self):
        config = SimulationConfig(**BASE)
        with pytest.raises(ValueError, match="injectors"):
            simulate_batch(
                config,
                spawn_generators(0, 3),
                injectors=[ScriptedFailures([])],
            )


class TestRunEnsembleBatch:
    @pytest.mark.parametrize("name,config,process", MATRIX, ids=MATRIX_IDS)
    def test_batch_flag_is_transparent(self, name, config, process):
        off = run_ensemble(
            config, n_runs=20, seed=7, process=process, batch=False
        )
        on = run_ensemble(
            config, n_runs=20, seed=7, process=process, batch=True
        )
        assert on == off

    def test_metrics_identical(self):
        config = SimulationConfig(**BASE, jitter=0.3)
        reg_off = MetricsRegistry()
        reg_on = MetricsRegistry()
        run_ensemble(config, n_runs=20, seed=3, batch=False, registry=reg_off)
        run_ensemble(config, n_runs=20, seed=3, batch=True, registry=reg_on)
        assert reg_on.snapshot() == reg_off.snapshot()

    def test_batch_across_backends(self):
        """Chunked batch execution (batch within a chunk, workers across
        chunks) equals the single-chunk serial-backend run."""
        config = SimulationConfig(**BASE, jitter=0.3)
        reference = run_ensemble(config, n_runs=30, seed=9, batch=True)
        threaded = run_ensemble(
            config, n_runs=30, seed=9, batch=True, jobs=4
        )
        assert threaded == reference

    def test_trace_falls_back_to_per_replica(self):
        """Tracing is per-replica only; batch=True must transparently
        fall back and still return identical runs plus full traces."""
        config = SimulationConfig(**BASE, jitter=0.3)
        plain = run_ensemble(config, n_runs=10, seed=4, batch=True)
        traced = run_ensemble(
            config, n_runs=10, seed=4, batch=True, trace=True
        )
        assert traced.runs == plain.runs
        assert traced.traces is not None
        assert len(traced.traces) == 10
        assert all(len(events) > 0 for events in traced.traces)

    def test_custom_injector_falls_back(self):
        config = SimulationConfig(**BASE, jitter=0.3)
        events = [(9_000.0, 2)]
        with_injector = run_ensemble(
            config,
            n_runs=4,
            seed=6,
            injector=ScriptedFailures(events),
            batch=True,
        )
        reference = run_ensemble(
            config,
            n_runs=4,
            seed=6,
            injector=ScriptedFailures(events),
            batch=False,
        )
        assert with_injector == reference

    def test_env_default_resolution(self, monkeypatch):
        monkeypatch.delenv(BATCH_ENV_VAR, raising=False)
        assert resolve_batch() is True
        assert resolve_batch(False) is False
        assert resolve_batch(True) is True
        for text in ("0", "false", "off", "no", " OFF "):
            monkeypatch.setenv(BATCH_ENV_VAR, text)
            assert resolve_batch() is False
        monkeypatch.setenv(BATCH_ENV_VAR, "1")
        assert resolve_batch() is True
        # Explicit argument beats the environment.
        monkeypatch.setenv(BATCH_ENV_VAR, "0")
        assert resolve_batch(True) is True


class TestJitterStreams:
    def test_batch_consumes_jitter_like_serial(self):
        """Directly pin the stream contract the buffers rely on: a block
        uniform fill equals repeated scalar draws, element for element."""
        a = np.random.default_rng(123)
        b = np.random.default_rng(123)
        block = 1.0 + a.uniform(-0.3, 0.3, size=64)
        singles = np.array([1.0 + b.uniform(-0.3, 0.3) for _ in range(64)])
        assert block.tolist() == singles.tolist()
