"""Determinism regression: ensembles are bit-identical on every backend.

The seed-stability guarantee of the execution layer: ``run_ensemble``
spawns every child seed up front in replica order, so the executor can
only change *where* a replica runs — serial, thread-pool, and
process-pool runs of one root seed must return byte-identical
:class:`~repro.sim.metrics.EnsembleResult`s, including censored runs and
scripted-failure injections.
"""

import pytest

from repro.parallel.executor import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from repro.sim.config import SimulationConfig
from repro.sim.ensemble import run_ensemble
from repro.sim.failure_injection import ScriptedFailures

BACKENDS = {
    "serial": SerialExecutor,
    "thread": lambda: ThreadExecutor(3),
    "process": lambda: ProcessExecutor(2),
}


@pytest.fixture
def cfg():
    return SimulationConfig(
        productive_seconds=2_000.0,
        intervals=(10, 4, 2, 2),
        checkpoint_costs=(1.0, 2.0, 4.0, 8.0),
        recovery_costs=(1.0, 2.0, 4.0, 8.0),
        failure_rates=(1e-3, 5e-4, 2e-4, 1e-4),
        allocation_period=10.0,
        jitter=0.3,
    )


@pytest.fixture
def censored_cfg():
    # Rates/costs harsh enough that some replicas hit the cap.
    return SimulationConfig(
        productive_seconds=5_000.0,
        intervals=(4, 2),
        checkpoint_costs=(30.0, 120.0),
        recovery_costs=(30.0, 120.0),
        failure_rates=(2e-3, 1e-3),
        allocation_period=60.0,
        jitter=0.3,
        max_wallclock=20_000.0,
    )


@pytest.mark.parametrize("backend", sorted(BACKENDS), ids=sorted(BACKENDS))
def test_backend_bit_identical(cfg, backend):
    reference = run_ensemble(cfg, n_runs=11, seed=2024)
    with BACKENDS[backend]() as ex:
        parallel = run_ensemble(cfg, n_runs=11, seed=2024, executor=ex)
    assert parallel == reference


@pytest.mark.parametrize("backend", sorted(BACKENDS), ids=sorted(BACKENDS))
def test_censored_runs_bit_identical(censored_cfg, backend):
    reference = run_ensemble(censored_cfg, n_runs=8, seed=99)
    assert not reference.all_completed  # the censoring path is exercised
    with BACKENDS[backend]() as ex:
        parallel = run_ensemble(censored_cfg, n_runs=8, seed=99, executor=ex)
    assert parallel == reference


def test_jobs_argument_equals_serial(cfg):
    assert run_ensemble(cfg, n_runs=9, seed=5, jobs=3) == run_ensemble(
        cfg, n_runs=9, seed=5
    )


class TestScriptedInjector:
    EVENTS = ((150.0, 1), (400.0, 2), (900.0, 1))

    def test_each_replica_replays_the_full_trace(self, cfg):
        # Deep-copied per replica: every run sees the trace from the start,
        # so all replicas observe the identical failure count.
        ens = run_ensemble(
            cfg, n_runs=4, seed=0, injector=ScriptedFailures(self.EVENTS)
        )
        for run in ens.runs:
            assert run.total_failures == len(self.EVENTS)

    def test_shared_injector_not_mutated(self, cfg):
        injector = ScriptedFailures(self.EVENTS)
        run_ensemble(cfg, n_runs=3, seed=0, injector=injector)
        # The caller's injector is untouched: still at the first event.
        assert injector.peek() == self.EVENTS[0]

    @pytest.mark.parametrize("backend", sorted(BACKENDS), ids=sorted(BACKENDS))
    def test_injector_bit_identical_across_backends(self, cfg, backend):
        reference = run_ensemble(
            cfg, n_runs=4, seed=3, injector=ScriptedFailures(self.EVENTS)
        )
        with BACKENDS[backend]() as ex:
            parallel = run_ensemble(
                cfg,
                n_runs=4,
                seed=3,
                injector=ScriptedFailures(self.EVENTS),
                executor=ex,
            )
        assert parallel == reference

    def test_uncopyable_injector_rejected(self, cfg):
        class Uncopyable:
            def __deepcopy__(self, memo):
                raise RuntimeError("lives on a socket")

            def peek(self):  # pragma: no cover - never reached
                return (float("inf"), 1)

            def pop(self):  # pragma: no cover - never reached
                raise RuntimeError

        with pytest.raises(TypeError, match="cannot be deep-copied"):
            run_ensemble(cfg, n_runs=2, seed=0, injector=Uncopyable())


class TestObservabilityDeterminism:
    """Tracing and metrics obey the same bit-identity contract as results."""

    @pytest.mark.parametrize("backend", sorted(BACKENDS), ids=sorted(BACKENDS))
    def test_traced_ensembles_bit_identical(self, cfg, backend):
        reference = run_ensemble(cfg, n_runs=7, seed=11, trace=True)
        assert reference.traces is not None
        assert len(reference.traces) == reference.n_runs
        with BACKENDS[backend]() as ex:
            parallel = run_ensemble(
                cfg, n_runs=7, seed=11, trace=True, executor=ex
            )
        assert parallel.traces == reference.traces
        assert parallel == reference

    def test_tracing_does_not_change_results(self, cfg):
        plain = run_ensemble(cfg, n_runs=7, seed=11)
        traced = run_ensemble(cfg, n_runs=7, seed=11, trace=True)
        assert traced.runs == plain.runs
        assert plain.traces is None

    @pytest.mark.parametrize("backend", sorted(BACKENDS), ids=sorted(BACKENDS))
    def test_sim_metrics_bit_identical_across_backends(self, cfg, backend):
        from repro.obs.metrics import MetricsRegistry

        serial_reg = MetricsRegistry()
        run_ensemble(cfg, n_runs=9, seed=4, registry=serial_reg)
        backend_reg = MetricsRegistry()
        with BACKENDS[backend]() as ex:
            run_ensemble(
                cfg, n_runs=9, seed=4, executor=ex, registry=backend_reg
            )
        # Counters are integers and histogram samples are concatenated in
        # replica order, so the snapshots are equal bit for bit.
        assert backend_reg.snapshot(prefix="sim.") == serial_reg.snapshot(
            prefix="sim."
        )

    def test_metrics_counts_match_ensemble(self, cfg):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        ens = run_ensemble(cfg, n_runs=6, seed=8, registry=reg)
        summary = reg.summary(prefix="sim.")
        assert summary["sim.runs"] == ens.n_runs
        assert summary["sim.failures"] == sum(
            r.total_failures for r in ens.runs
        )
        assert summary["sim.wallclock"]["count"] == ens.n_runs
        for level in range(1, 5):
            assert summary[f"sim.failures.l{level}"] == sum(
                r.failures_per_level[level - 1] for r in ens.runs
            )
            assert summary[f"sim.checkpoints.l{level}"] == sum(
                r.checkpoints_per_level[level - 1] for r in ens.runs
            )

    def test_trace_maxlen_bounds_every_replica(self, cfg):
        ens = run_ensemble(cfg, n_runs=5, seed=2, trace=True, trace_maxlen=4)
        assert all(len(trace) <= 4 for trace in ens.traces)
