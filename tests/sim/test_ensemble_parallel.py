"""Determinism regression: ensembles are bit-identical on every backend.

The seed-stability guarantee of the execution layer: ``run_ensemble``
spawns every child seed up front in replica order, so the executor can
only change *where* a replica runs — serial, thread-pool, and
process-pool runs of one root seed must return byte-identical
:class:`~repro.sim.metrics.EnsembleResult`s, including censored runs and
scripted-failure injections.
"""

import pytest

from repro.parallel.executor import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from repro.sim.config import SimulationConfig
from repro.sim.ensemble import run_ensemble
from repro.sim.failure_injection import ScriptedFailures

BACKENDS = {
    "serial": SerialExecutor,
    "thread": lambda: ThreadExecutor(3),
    "process": lambda: ProcessExecutor(2),
}


@pytest.fixture
def cfg():
    return SimulationConfig(
        productive_seconds=2_000.0,
        intervals=(10, 4, 2, 2),
        checkpoint_costs=(1.0, 2.0, 4.0, 8.0),
        recovery_costs=(1.0, 2.0, 4.0, 8.0),
        failure_rates=(1e-3, 5e-4, 2e-4, 1e-4),
        allocation_period=10.0,
        jitter=0.3,
    )


@pytest.fixture
def censored_cfg():
    # Rates/costs harsh enough that some replicas hit the cap.
    return SimulationConfig(
        productive_seconds=5_000.0,
        intervals=(4, 2),
        checkpoint_costs=(30.0, 120.0),
        recovery_costs=(30.0, 120.0),
        failure_rates=(2e-3, 1e-3),
        allocation_period=60.0,
        jitter=0.3,
        max_wallclock=20_000.0,
    )


@pytest.mark.parametrize("backend", sorted(BACKENDS), ids=sorted(BACKENDS))
def test_backend_bit_identical(cfg, backend):
    reference = run_ensemble(cfg, n_runs=11, seed=2024)
    with BACKENDS[backend]() as ex:
        parallel = run_ensemble(cfg, n_runs=11, seed=2024, executor=ex)
    assert parallel == reference


@pytest.mark.parametrize("backend", sorted(BACKENDS), ids=sorted(BACKENDS))
def test_censored_runs_bit_identical(censored_cfg, backend):
    reference = run_ensemble(censored_cfg, n_runs=8, seed=99)
    assert not reference.all_completed  # the censoring path is exercised
    with BACKENDS[backend]() as ex:
        parallel = run_ensemble(censored_cfg, n_runs=8, seed=99, executor=ex)
    assert parallel == reference


def test_jobs_argument_equals_serial(cfg):
    assert run_ensemble(cfg, n_runs=9, seed=5, jobs=3) == run_ensemble(
        cfg, n_runs=9, seed=5
    )


class TestScriptedInjector:
    EVENTS = ((150.0, 1), (400.0, 2), (900.0, 1))

    def test_each_replica_replays_the_full_trace(self, cfg):
        # Deep-copied per replica: every run sees the trace from the start,
        # so all replicas observe the identical failure count.
        ens = run_ensemble(
            cfg, n_runs=4, seed=0, injector=ScriptedFailures(self.EVENTS)
        )
        for run in ens.runs:
            assert run.total_failures == len(self.EVENTS)

    def test_shared_injector_not_mutated(self, cfg):
        injector = ScriptedFailures(self.EVENTS)
        run_ensemble(cfg, n_runs=3, seed=0, injector=injector)
        # The caller's injector is untouched: still at the first event.
        assert injector.peek() == self.EVENTS[0]

    @pytest.mark.parametrize("backend", sorted(BACKENDS), ids=sorted(BACKENDS))
    def test_injector_bit_identical_across_backends(self, cfg, backend):
        reference = run_ensemble(
            cfg, n_runs=4, seed=3, injector=ScriptedFailures(self.EVENTS)
        )
        with BACKENDS[backend]() as ex:
            parallel = run_ensemble(
                cfg,
                n_runs=4,
                seed=3,
                injector=ScriptedFailures(self.EVENTS),
                executor=ex,
            )
        assert parallel == reference

    def test_uncopyable_injector_rejected(self, cfg):
        class Uncopyable:
            def __deepcopy__(self, memo):
                raise RuntimeError("lives on a socket")

            def peek(self):  # pragma: no cover - never reached
                return (float("inf"), 1)

            def pop(self):  # pragma: no cover - never reached
                raise RuntimeError

        with pytest.raises(TypeError, match="cannot be deep-copied"):
            run_ensemble(cfg, n_runs=2, seed=0, injector=Uncopyable())
