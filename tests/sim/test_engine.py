"""Tests for the event-driven execution engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.config import SimulationConfig
from repro.sim.engine import simulate
from repro.sim.failure_injection import ScriptedFailures


def _config(**overrides):
    defaults = dict(
        productive_seconds=1_000.0,
        intervals=(10, 5, 2, 2),
        checkpoint_costs=(1.0, 2.0, 4.0, 8.0),
        recovery_costs=(1.0, 2.0, 4.0, 8.0),
        failure_rates=(0.0, 0.0, 0.0, 0.0),
        allocation_period=10.0,
        jitter=0.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestFailureFree:
    def test_wallclock_is_work_plus_checkpoints(self):
        cfg = _config()
        result = simulate(cfg, seed=0)
        # 9*1 + 4*2 + 1*4 + 1*8 = 29 seconds of checkpoints
        assert result.wallclock == pytest.approx(1_000.0 + 29.0)
        assert result.portions["productive"] == pytest.approx(1_000.0)
        assert result.portions["checkpoint"] == pytest.approx(29.0)
        assert result.portions["restart"] == 0.0
        assert result.portions["rollback"] == 0.0
        assert result.completed

    def test_checkpoint_counts(self):
        result = simulate(_config(), seed=0)
        assert result.checkpoints_per_level == (9, 4, 1, 1)
        assert result.failures_per_level == (0, 0, 0, 0)

    def test_no_checkpoints_with_single_intervals(self):
        cfg = _config(intervals=(1, 1, 1, 1))
        result = simulate(cfg, seed=0)
        assert result.wallclock == pytest.approx(1_000.0)


class TestScriptedFailures:
    def test_level1_rollback_to_latest_level1(self):
        """A software failure at progress ~350 rolls back to the 300 mark."""
        cfg = _config()
        # level-1 marks every 100s; no other levels for clarity
        cfg = _config(intervals=(10, 1, 1, 1))
        trace = ScriptedFailures([(352.0, 1)])
        result = simulate(cfg, seed=0, injector=trace)
        # at t=352: 3 checkpoints done (3s), progress = 349 -> rollback to 300
        assert result.portions["rollback"] == pytest.approx(49.0)
        assert result.portions["restart"] == pytest.approx(10.0 + 1.0)
        assert result.failures_per_level == (1, 0, 0, 0)

    def test_level2_failure_destroys_level1_checkpoints(self):
        """A hardware failure must not restore from level-1 data."""
        cfg = _config(intervals=(10, 2, 1, 1))
        # level-1 marks every 100, level-2 mark at 500
        trace = ScriptedFailures([(650.0, 2)])
        result = simulate(cfg, seed=0, injector=trace)
        # at t=650: progress ~= 650 - ckpt time; rollback to the level-2
        # mark at 500, NOT the level-1 mark at 600
        assert result.portions["rollback"] > 100.0

    def test_failure_before_any_checkpoint_restarts_from_zero(self):
        cfg = _config(intervals=(4, 1, 1, 1))
        trace = ScriptedFailures([(200.0, 1)])
        result = simulate(cfg, seed=0, injector=trace)
        assert result.portions["rollback"] == pytest.approx(200.0)

    def test_failure_during_checkpoint_aborts_it(self):
        cfg = _config(intervals=(2, 1, 1, 1), checkpoint_costs=(100.0, 1, 1, 1))
        # level-1 mark at 500, checkpoint runs [500, 600); failure at 550
        trace = ScriptedFailures([(550.0, 1)])
        result = simulate(cfg, seed=0, injector=trace)
        # aborted half checkpoint (50s) + the retaken full one (100s)
        assert result.portions["checkpoint"] == pytest.approx(150.0)
        # no valid level-1 checkpoint existed -> restart from zero
        assert result.portions["rollback"] == pytest.approx(500.0)

    def test_failure_during_recovery_restarts_recovery(self):
        cfg = _config(
            intervals=(2, 1, 1, 1),
            recovery_costs=(100.0, 1.0, 1.0, 1.0),
            allocation_period=0.0,
        )
        trace = ScriptedFailures([(100.0, 1), (150.0, 1)])
        result = simulate(cfg, seed=0, injector=trace)
        # first recovery interrupted at 50s, second full 100s
        assert result.portions["restart"] == pytest.approx(150.0)
        assert result.failures_per_level == (2, 0, 0, 0)

    def test_pfs_checkpoint_survives_all_levels(self):
        cfg = _config(intervals=(1, 1, 1, 2))
        # PFS mark at 500; level-4 failure at 900
        trace = ScriptedFailures([(900.0, 4)])
        result = simulate(cfg, seed=0, injector=trace)
        # rollback only to 500 even for the worst failure level
        assert result.portions["rollback"] < 400.0 + 1.0


class TestConservation:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        rate_scale=st.floats(min_value=0.1, max_value=20.0),
        jitter=st.sampled_from([0.0, 0.3]),
    )
    def test_portions_sum_to_wallclock(self, seed, rate_scale, jitter):
        """Invariant: the four Fig. 5 portions partition the wall-clock.

        The harshest draws (rate_scale near 20) are effectively hopeless —
        a level-3/4 failure before the 500 s mark rolls back to zero, so
        the run can grind for simulated decades.  A tight ``max_wallclock``
        censors those quickly; the partition invariant holds either way,
        and the full-productive-span claim only applies to completed runs.
        """
        base = 1e-3
        cfg = _config(
            failure_rates=(
                base * rate_scale,
                base * rate_scale / 2,
                base * rate_scale / 4,
                base * rate_scale / 8,
            ),
            jitter=jitter,
            max_wallclock=500_000.0,
        )
        result = simulate(cfg, seed=seed)
        total = sum(result.portions.values())
        assert total == pytest.approx(result.wallclock, rel=1e-9)
        if result.completed:
            assert result.portions["productive"] == pytest.approx(1_000.0)
        else:
            # censoring may overshoot the cap by at most one recovery
            assert result.wallclock >= 500_000.0 - 1e-3
            assert result.portions["productive"] < 1_000.0

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_first_time_work_equals_productive_span(self, seed):
        """However many failures occur, exactly P seconds of first-time
        productive work happen in a completed run."""
        cfg = _config(failure_rates=(2e-3, 1e-3, 5e-4, 2e-4), jitter=0.3)
        result = simulate(cfg, seed=seed)
        assert result.completed
        assert result.portions["productive"] == pytest.approx(1_000.0)


class TestStochastic:
    def test_reproducible_by_seed(self):
        cfg = _config(failure_rates=(1e-3, 5e-4, 2e-4, 1e-4))
        a = simulate(cfg, seed=42)
        b = simulate(cfg, seed=42)
        assert a.wallclock == b.wallclock
        assert a.portions == b.portions

    def test_scalar_jitter_draw_bit_identical_to_array_draw(self):
        """The recovery fast path (_draw_jitter_scalar) must consume the
        exact stream value the historical size-1 array draw consumed."""
        from repro.sim.engine import _draw_jitter, _draw_jitter_scalar

        array_rng = np.random.default_rng(314)
        scalar_rng = np.random.default_rng(314)
        for _ in range(100):
            expected = float(_draw_jitter(array_rng, 0.3, 1)[0])
            assert _draw_jitter_scalar(scalar_rng, 0.3) == expected
        assert _draw_jitter_scalar(scalar_rng, 0.0) == 1.0

    def test_failure_counts_scale_with_rates(self):
        lo = _config(failure_rates=(1e-4, 0, 0, 0))
        hi = _config(failure_rates=(2e-3, 0, 0, 0))
        n_lo = np.mean([simulate(lo, seed=s).total_failures for s in range(30)])
        n_hi = np.mean([simulate(hi, seed=s).total_failures for s in range(30)])
        assert n_hi > 4 * n_lo

    def test_jitter_changes_costs_but_not_mean_much(self):
        cfg0 = _config()
        cfg3 = _config(jitter=0.3)
        base = simulate(cfg0, seed=0).wallclock
        jittered = np.mean([simulate(cfg3, seed=s).wallclock for s in range(40)])
        # uniform +-30% jitter is mean-preserving
        assert jittered == pytest.approx(base, rel=0.02)


class TestCensoring:
    def test_hopeless_config_censored_at_cap(self):
        """Checkpoint cost >> MTBF: no interval ever completes."""
        cfg = _config(
            intervals=(1, 1, 1, 4),
            checkpoint_costs=(1, 1, 1, 5_000.0),
            recovery_costs=(1, 1, 1, 10.0),
            failure_rates=(0, 0, 0, 5e-3),
            max_wallclock=50_000.0,
        )
        result = simulate(cfg, seed=1)
        assert not result.completed
        assert result.wallclock <= 50_000.0 * 1.2
