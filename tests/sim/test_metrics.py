"""Tests for SimResult and EnsembleResult."""

import numpy as np
import pytest

from repro.sim.metrics import EnsembleResult, SimResult


def _result(wallclock=1_000.0, completed=True):
    return SimResult(
        wallclock=wallclock,
        portions={
            "productive": wallclock * 0.7,
            "checkpoint": wallclock * 0.1,
            "restart": wallclock * 0.05,
            "rollback": wallclock * 0.15,
        },
        failures_per_level=(3, 2, 1, 0),
        checkpoints_per_level=(9, 4, 1, 1),
        completed=completed,
    )


class TestSimResult:
    def test_total_failures(self):
        assert _result().total_failures == 6

    def test_efficiency(self):
        r = _result(wallclock=2_000.0)
        # (1e6 core-s / 2000 s) / 1000 cores = 0.5
        assert r.efficiency(1e6, 1_000.0) == pytest.approx(0.5)

    def test_efficiency_validation(self):
        with pytest.raises(ValueError):
            _result().efficiency(1e6, 0.0)

    def test_missing_portion_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            SimResult(
                wallclock=1.0,
                portions={"productive": 1.0},
                failures_per_level=(0,),
                checkpoints_per_level=(0,),
            )


class TestEnsemble:
    def test_statistics(self):
        ens = EnsembleResult(runs=tuple(_result(w) for w in (900.0, 1_100.0)))
        assert ens.n_runs == 2
        assert ens.mean_wallclock == pytest.approx(1_000.0)
        assert ens.std_wallclock == pytest.approx(np.std([900, 1100], ddof=1))
        lo, hi = ens.confidence_interval()
        assert lo < 1_000.0 < hi

    def test_mean_portions(self):
        ens = EnsembleResult(runs=tuple(_result(w) for w in (1_000.0, 2_000.0)))
        portions = ens.mean_portions()
        assert portions["productive"] == pytest.approx(0.7 * 1_500.0)

    def test_single_run_std_zero(self):
        ens = EnsembleResult(runs=(_result(),))
        assert ens.std_wallclock == 0.0

    def test_all_completed_flag(self):
        good = EnsembleResult(runs=(_result(),))
        assert good.all_completed
        censored = EnsembleResult(runs=(_result(completed=False),))
        assert not censored.all_completed

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EnsembleResult(runs=())

    def test_mean_efficiency(self):
        ens = EnsembleResult(runs=(_result(1_000.0), _result(1_000.0)))
        assert ens.mean_efficiency(1e6, 1_000.0) == pytest.approx(1.0)
