"""Tests for the PhaseTimer wall-clock accounting layer."""

import json
import time

import pytest

from repro.parallel.timing import PhaseTimer, write_bench_json


def test_phases_accumulate():
    timer = PhaseTimer()
    with timer.phase("solve"):
        time.sleep(0.01)
    with timer.phase("solve"):
        time.sleep(0.01)
    with timer.phase("simulate"):
        pass
    assert timer.elapsed("solve") >= 0.02
    assert timer.elapsed("simulate") >= 0.0
    assert set(timer.report()) == {"solve", "simulate"}
    assert timer.total == pytest.approx(
        timer.elapsed("solve") + timer.elapsed("simulate")
    )


def test_unentered_phase_is_zero():
    assert PhaseTimer().elapsed("nope") == 0.0


def test_phase_charged_on_exception():
    timer = PhaseTimer()
    with pytest.raises(RuntimeError):
        with timer.phase("boom"):
            time.sleep(0.005)
            raise RuntimeError("x")
    assert timer.elapsed("boom") >= 0.005


def test_add_direct_charge():
    timer = PhaseTimer()
    timer.add("simulate", 1.5)
    timer.add("simulate", 0.5)
    assert timer.elapsed("simulate") == pytest.approx(2.0)
    with pytest.raises(ValueError):
        timer.add("simulate", -1.0)


def test_write_bench_json_round_trips(tmp_path):
    payload = {"speedup": 2.5, "phases": {"solve": 0.1}}
    path = write_bench_json(tmp_path / "sub" / "BENCH_parallel.json", payload)
    assert json.loads(path.read_text()) == payload


def test_report_preserves_first_entered_order():
    timer = PhaseTimer()
    for name in ("solve", "simulate", "aggregate", "solve"):
        timer.add(name, 0.25)
    assert list(timer.report()) == ["solve", "simulate", "aggregate"]
    assert timer.report()["solve"] == pytest.approx(0.5)


def test_merge_sums_per_phase_first_seen_order():
    driver = PhaseTimer()
    driver.add("solve", 1.0)
    driver.add("simulate", 2.0)
    worker = PhaseTimer()
    worker.add("simulate", 3.0)
    worker.add("export", 0.5)

    merged = PhaseTimer.merge([driver, worker])
    assert list(merged.report()) == ["solve", "simulate", "export"]
    assert merged.elapsed("solve") == pytest.approx(1.0)
    assert merged.elapsed("simulate") == pytest.approx(5.0)
    assert merged.elapsed("export") == pytest.approx(0.5)


def test_merge_of_nothing_is_empty():
    assert PhaseTimer.merge([]).report() == {}


def test_publish_copies_phase_counters_into_registry():
    from repro.obs.metrics import MetricsRegistry

    timer = PhaseTimer()
    timer.add("solve", 1.25)
    registry = MetricsRegistry()
    timer.publish(registry)
    timer.publish(registry)  # additive, like any counter merge
    assert registry.counter("phase.solve.seconds").value == pytest.approx(2.5)


def test_timer_over_shared_registry_surfaces_phase_metrics():
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    timer = PhaseTimer(registry)
    timer.add("simulate", 0.75)
    assert "phase.simulate.seconds" in registry.names()
    assert registry.summary()["phase.simulate.seconds"] == pytest.approx(0.75)
