"""Tests for the PhaseTimer wall-clock accounting layer."""

import json
import time

import pytest

from repro.parallel.timing import PhaseTimer, write_bench_json


def test_phases_accumulate():
    timer = PhaseTimer()
    with timer.phase("solve"):
        time.sleep(0.01)
    with timer.phase("solve"):
        time.sleep(0.01)
    with timer.phase("simulate"):
        pass
    assert timer.elapsed("solve") >= 0.02
    assert timer.elapsed("simulate") >= 0.0
    assert set(timer.report()) == {"solve", "simulate"}
    assert timer.total == pytest.approx(
        timer.elapsed("solve") + timer.elapsed("simulate")
    )


def test_unentered_phase_is_zero():
    assert PhaseTimer().elapsed("nope") == 0.0


def test_phase_charged_on_exception():
    timer = PhaseTimer()
    with pytest.raises(RuntimeError):
        with timer.phase("boom"):
            time.sleep(0.005)
            raise RuntimeError("x")
    assert timer.elapsed("boom") >= 0.005


def test_add_direct_charge():
    timer = PhaseTimer()
    timer.add("simulate", 1.5)
    timer.add("simulate", 0.5)
    assert timer.elapsed("simulate") == pytest.approx(2.0)
    with pytest.raises(ValueError):
        timer.add("simulate", -1.0)


def test_write_bench_json_round_trips(tmp_path):
    payload = {"speedup": 2.5, "phases": {"solve": 0.1}}
    path = write_bench_json(tmp_path / "sub" / "BENCH_parallel.json", payload)
    assert json.loads(path.read_text()) == payload
