"""Tests for the Executor abstraction and its selection rules."""

import os

import pytest

from repro.parallel.executor import (
    BACKEND_ENV_VAR,
    JOBS_ENV_VAR,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    chunk_evenly,
    cpu_count,
    ensure_executor,
    make_executor,
    resolve_jobs,
)


def _square(x):
    return x * x


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs(None) == 1

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "7")
        assert resolve_jobs(3) == 3

    def test_env_var_used_when_unset(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "5")
        assert resolve_jobs(None) == 5

    def test_zero_and_auto_mean_all_cores(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs(0) == cpu_count()
        assert resolve_jobs("auto") == cpu_count()
        monkeypatch.setenv(JOBS_ENV_VAR, "auto")
        assert resolve_jobs(None) == cpu_count()

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            resolve_jobs(-2)

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "many")
        with pytest.raises(ValueError, match="cannot parse"):
            resolve_jobs(None)


class TestBackendSelection:
    def test_serial_by_default(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert isinstance(make_executor(), SerialExecutor)

    def test_process_pool_when_parallel(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        with make_executor(2, workload=8) as ex:
            assert isinstance(ex, ProcessExecutor)
            assert ex.jobs == 2

    def test_tiny_workload_degrades_to_serial(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert isinstance(make_executor(8, workload=1), SerialExecutor)

    def test_pool_never_wider_than_workload(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        with make_executor(16, workload=3) as ex:
            assert ex.jobs == 3

    def test_backend_argument_forces_threads(self):
        with make_executor(2, backend="thread", workload=8) as ex:
            assert isinstance(ex, ThreadExecutor)

    def test_backend_env_var(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "thread")
        with make_executor(2, workload=8) as ex:
            assert isinstance(ex, ThreadExecutor)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            make_executor(2, backend="gpu")

    def test_ensure_executor_respects_ownership(self):
        passed = SerialExecutor()
        ex, owned = ensure_executor(passed, None, 10)
        assert ex is passed and not owned
        ex2, owned2 = ensure_executor(None, 1, 10)
        assert owned2


class TestMapContract:
    @pytest.mark.parametrize(
        "factory",
        [SerialExecutor, lambda: ThreadExecutor(3), lambda: ProcessExecutor(2)],
        ids=["serial", "thread", "process"],
    )
    def test_order_preserved(self, factory):
        with factory() as ex:
            assert ex.map(_square, range(17)) == [i * i for i in range(17)]

    def test_worker_exception_propagates(self):
        with ThreadExecutor(2) as ex:
            with pytest.raises(ZeroDivisionError):
                ex.map(lambda x: 1 // x, [2, 1, 0])

    def test_executor_needs_positive_jobs(self):
        with pytest.raises(ValueError, match=">= 1"):
            ThreadExecutor(0)


class TestChunking:
    def test_chunks_are_contiguous_and_complete(self):
        items = list(range(13))
        chunks = chunk_evenly(items, 4)
        assert [x for c in chunks for x in c] == items
        assert max(len(c) for c in chunks) - min(len(c) for c in chunks) <= 1

    def test_more_chunks_than_items(self):
        chunks = chunk_evenly([1, 2], 5)
        assert [x for c in chunks for x in c] == [1, 2]
        assert all(len(c) >= 1 for c in chunks)

    def test_invalid_chunk_count(self):
        with pytest.raises(ValueError):
            chunk_evenly([1], 0)
