"""Span trees must be bit-identical across executor backends.

``run_ensemble`` pins each chunk's span identity to the ensemble span's
context plus the replica's *global* index, and the parent re-emits worker
fragments in chunk order — so the ``span_tree_signature`` of a traced
ensemble is a pure function of (config, seed, n_runs), never of the
serial/thread/process backend or the chunking it implies.
"""

from __future__ import annotations

import pytest

from repro.core.solutions import ml_opt_scale
from repro.obs.spans import SpanRecorder, recording, span, span_tree_signature
from repro.parallel.executor import make_executor
from repro.sim.runner import config_from_solution

N_RUNS = 8
SEED = 42
TRACE_ID = "ab" * 16


def _traced_ensemble(config, backend: str, jobs: int):
    """One traced ensemble under an explicit backend; returns
    (EnsembleResult, recorded spans)."""
    from repro.sim.ensemble import run_ensemble

    recorder = SpanRecorder()
    with recording(recorder):
        # A pinned root trace id makes the whole tree reproducible.
        with span("test.root", trace_id=TRACE_ID):
            with make_executor(jobs, backend=backend, workload=N_RUNS) as ex:
                result = run_ensemble(
                    config, n_runs=N_RUNS, seed=SEED, executor=ex
                )
    return result, recorder.spans


@pytest.fixture(scope="module")
def fast_config():
    # Mirrors the tests/conftest.py `small_params` fixture (module-scoped
    # fixtures cannot depend on the function-scoped one).
    from repro.core.notation import ModelParameters
    from repro.costs.model import LevelCostModel
    from repro.failures.rates import FailureRates
    from repro.speedup.quadratic import QuadraticSpeedup

    params = ModelParameters.from_core_days(
        200.0,
        speedup=QuadraticSpeedup(kappa=0.5, ideal_scale=2_000.0),
        costs=LevelCostModel.from_constants([1.0, 2.5, 4.0, 12.0]),
        rates=FailureRates((24.0, 12.0, 6.0, 3.0), baseline_scale=2_000.0),
        allocation_period=30.0,
    )
    return config_from_solution(params, ml_opt_scale(params))


def test_serial_tree_shape(fast_config):
    result, spans = _traced_ensemble(fast_config, "serial", 1)
    assert len(result.runs) == N_RUNS
    names = sorted(s.name for s in spans)
    assert names == sorted(
        ["test.root", "sim.ensemble"] + ["sim.replica"] * N_RUNS
    )
    assert all(s.trace_id == TRACE_ID for s in spans)
    replicas = [s for s in spans if s.name == "sim.replica"]
    ensemble = next(s for s in spans if s.name == "sim.ensemble")
    assert {s.parent_id for s in replicas} == {ensemble.span_id}
    assert sorted(s.attributes["replica"] for s in replicas) == list(
        range(N_RUNS)
    )


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_parallel_backends_match_serial_bit_for_bit(fast_config, backend):
    serial_result, serial_spans = _traced_ensemble(fast_config, "serial", 1)
    par_result, par_spans = _traced_ensemble(fast_config, backend, 3)
    # The simulated runs themselves stay bit-identical...
    assert par_result.runs == serial_result.runs
    # ...and so does the timing-free span tree.
    assert span_tree_signature(par_spans) == span_tree_signature(serial_spans)


def test_untraced_ensembles_record_nothing(fast_config):
    from repro.sim.ensemble import run_ensemble

    recorder = SpanRecorder()
    # No recording() scope installed: the null fast path must stay empty.
    result = run_ensemble(fast_config, n_runs=2, seed=SEED)
    assert len(result.runs) == 2
    assert len(recorder) == 0
