"""Tests for the repro.parallel execution layer."""
