"""ASCII table formatter tests."""

import pytest

from repro.util.tablefmt import format_table


def test_basic_layout():
    out = format_table(["a", "bb"], [[1, 2.5], ["x", "yz"]])
    lines = out.splitlines()
    assert len(lines) == 4  # header, separator, 2 rows
    assert "a" in lines[0] and "bb" in lines[0]
    assert set(lines[1]) <= {"-", "+"}


def test_title():
    out = format_table(["c"], [[1]], title="My Table")
    assert out.splitlines()[0] == "My Table"


def test_column_width_expands_to_largest_cell():
    out = format_table(["x"], [["longvalue"]])
    header = out.splitlines()[0]
    assert len(header) >= len("longvalue")


def test_float_rendering():
    out = format_table(["v"], [[0.000123], [123456.0], [1.5], [0]])
    assert "0.000123" in out
    assert "1.23e+05" in out or "123456" in out or "1.23e+5" in out
    assert "1.5" in out


def test_row_length_mismatch_rejected():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_empty_rows_ok():
    out = format_table(["a"], [])
    assert "a" in out
