"""Fixed-point and bisection helper tests."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.iteration import (
    FixedPointDiverged,
    bisect_root,
    fixed_point,
    relative_change,
)


class TestRelativeChange:
    def test_scalar_small_values_absolute(self):
        # |old| <= 1: absolute difference
        assert relative_change(0.5, 0.2) == pytest.approx(0.3)

    def test_scalar_large_values_relative(self):
        assert relative_change(110.0, 100.0) == pytest.approx(0.1)

    def test_vector_max(self):
        assert relative_change([1.0, 200.0], [1.0, 100.0]) == pytest.approx(1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            relative_change([1.0, 2.0], [1.0])

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_identity_is_zero(self, x):
        assert relative_change(x, x) == 0.0


class TestFixedPoint:
    def test_converges_to_sqrt2(self):
        # Babylonian iteration for sqrt(2)
        result = fixed_point(lambda x: 0.5 * (x + 2.0 / x), 1.0, tol=1e-12)
        assert result.value == pytest.approx(math.sqrt(2.0), abs=1e-10)
        assert result.iterations < 20

    def test_history_recorded(self):
        result = fixed_point(
            lambda x: 0.5 * (x + 2.0 / x), 1.0, tol=1e-12, keep_history=True
        )
        assert result.history[0] == 1.0
        assert len(result.history) == result.iterations + 1

    def test_divergence_raises_with_state(self):
        with pytest.raises(FixedPointDiverged) as excinfo:
            fixed_point(lambda x: 2.0 * x + 1.0, 1.0, tol=1e-12, max_iter=15)
        assert excinfo.value.last_value is not None

    def test_vector_iteration(self):
        # contraction toward (1, 2)
        target = np.array([1.0, 2.0])
        result = fixed_point(lambda v: 0.5 * (v + target), np.zeros(2), tol=1e-10)
        assert np.allclose(result.value, target, atol=1e-8)

    def test_bad_max_iter(self):
        with pytest.raises(ValueError):
            fixed_point(lambda x: x, 1.0, max_iter=0)


class TestBisect:
    def test_simple_root(self):
        root, iterations = bisect_root(lambda x: x - 3.25, 0.0, 10.0, xtol=1e-8)
        assert root == pytest.approx(3.25, abs=1e-6)
        assert iterations > 0

    def test_integer_xtol_matches_paper_usage(self):
        # The paper stops at bracket width 0.5 because scales are integers.
        root, iterations = bisect_root(lambda x: x - 70_000.0, 0.0, 100_000.0)
        assert abs(root - 70_000.0) <= 0.5
        # log2(1e5 / 0.5) ~ 17-18 steps
        assert iterations <= 20

    def test_exact_endpoint_roots(self):
        assert bisect_root(lambda x: x, 0.0, 5.0)[0] == 0.0
        assert bisect_root(lambda x: x - 5.0, 0.0, 5.0)[0] == 5.0

    def test_no_sign_change_rejected(self):
        with pytest.raises(ValueError):
            bisect_root(lambda x: x + 10.0, 0.0, 5.0)

    def test_invalid_bracket(self):
        with pytest.raises(ValueError):
            bisect_root(lambda x: x, 5.0, 0.0)

    @given(st.floats(min_value=0.1, max_value=99.9))
    def test_finds_arbitrary_roots(self, target):
        root, _ = bisect_root(lambda x: x - target, 0.0, 100.0, xtol=1e-6)
        assert root == pytest.approx(target, abs=1e-4)
