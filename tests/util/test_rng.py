"""RNG plumbing tests."""

import numpy as np
import pytest

from repro.util.rng import as_generator, spawn_generators


def test_as_generator_from_int_is_deterministic():
    a = as_generator(7).random(5)
    b = as_generator(7).random(5)
    assert np.array_equal(a, b)


def test_as_generator_passthrough():
    gen = np.random.default_rng(0)
    assert as_generator(gen) is gen


def test_as_generator_from_seed_sequence():
    seq = np.random.SeedSequence(42)
    a = as_generator(seq)
    assert isinstance(a, np.random.Generator)


def test_spawn_generators_independent_and_reproducible():
    first = [g.random(3) for g in spawn_generators(99, 4)]
    second = [g.random(3) for g in spawn_generators(99, 4)]
    for a, b in zip(first, second):
        assert np.array_equal(a, b)
    # children differ from each other
    assert not np.array_equal(first[0], first[1])


def test_spawn_generators_from_generator():
    gen = np.random.default_rng(1)
    children = spawn_generators(gen, 3)
    assert len(children) == 3
    draws = [c.random() for c in children]
    assert len(set(draws)) == 3


def test_spawn_zero():
    assert spawn_generators(0, 0) == []


def test_spawn_negative_rejected():
    with pytest.raises(ValueError):
        spawn_generators(0, -1)
