"""Unit-conversion tests."""

import pytest
from hypothesis import given, strategies as st

from repro.util import units


def test_seconds_per_day():
    assert units.SECONDS_PER_DAY == 86_400.0


def test_days_roundtrip():
    assert units.seconds_to_days(units.days_to_seconds(3.5)) == pytest.approx(3.5)


def test_core_days_conversion():
    assert units.core_days_to_core_seconds(1.0) == 86_400.0
    assert units.core_seconds_to_core_days(86_400.0) == 1.0


def test_rate_conversion():
    # 86,400 events/day is one event per second.
    assert units.per_day_to_per_second(86_400.0) == pytest.approx(1.0)
    assert units.per_second_to_per_day(1.0) == pytest.approx(86_400.0)


def test_paper_workload_magnitude():
    # 3 million core-days, the Fig. 5 workload, in core-seconds.
    assert units.core_days_to_core_seconds(3e6) == pytest.approx(2.592e11)


@given(st.floats(min_value=1e-6, max_value=1e12, allow_nan=False))
def test_conversion_roundtrips(value):
    assert units.days_to_seconds(units.seconds_to_days(value)) == pytest.approx(value)
    assert units.per_day_to_per_second(
        units.per_second_to_per_day(value)
    ) == pytest.approx(value)
