"""Tests for the statistical utilities."""

import numpy as np
import pytest

from repro.util.stats import (
    bootstrap_mean_interval,
    mean_confidence_interval,
    welch_faster_than,
)


class TestTInterval:
    def test_contains_true_mean_usually(self):
        rng = np.random.default_rng(0)
        hits = 0
        for _ in range(200):
            sample = rng.normal(10.0, 2.0, size=25)
            lo, hi = mean_confidence_interval(sample, 0.95)
            hits += lo <= 10.0 <= hi
        assert 180 <= hits <= 200  # ~95% coverage

    def test_narrows_with_sample_size(self):
        rng = np.random.default_rng(1)
        small = rng.normal(0, 1, 10)
        large = rng.normal(0, 1, 1_000)
        w_small = np.diff(mean_confidence_interval(small))[0]
        w_large = np.diff(mean_confidence_interval(large))[0]
        assert w_large < w_small

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0])
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0, 2.0], confidence=1.5)


class TestBootstrap:
    def test_reasonable_interval_for_bimodal_data(self):
        """The simulator's wall-clock style: most runs ~35, some ~47."""
        rng = np.random.default_rng(2)
        sample = np.where(rng.random(60) < 0.8, 35.0, 47.0)
        lo, hi = bootstrap_mean_interval(sample, 0.95, seed=3)
        assert lo <= sample.mean() <= hi
        assert hi - lo < 5.0

    def test_deterministic_for_seed(self):
        sample = np.arange(20.0)
        a = bootstrap_mean_interval(sample, seed=7)
        b = bootstrap_mean_interval(sample, seed=7)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean_interval([1.0, 2.0], n_resamples=10)


class TestWelch:
    def test_clear_separation_significant(self):
        rng = np.random.default_rng(3)
        fast = rng.normal(30.0, 2.0, 15)
        slow = rng.normal(40.0, 2.0, 15)
        result = welch_faster_than(fast, slow)
        assert result.significant
        assert result.statistic < 0
        assert result.p_value < 0.001

    def test_identical_distributions_not_significant(self):
        rng = np.random.default_rng(4)
        a = rng.normal(30.0, 2.0, 15)
        b = rng.normal(30.0, 2.0, 15)
        assert not welch_faster_than(a, b).significant

    def test_wrong_direction_not_significant(self):
        rng = np.random.default_rng(5)
        slow = rng.normal(40.0, 2.0, 15)
        fast = rng.normal(30.0, 2.0, 15)
        result = welch_faster_than(slow, fast)
        assert not result.significant
        assert result.p_value > 0.9

    def test_on_real_strategy_ensembles(self, paper_params):
        """ML(opt-scale) beats ML(ori-scale) with statistical significance
        under simulation on the paper's Fig. 5 configuration (where the
        analytic gap is large; near-tie configurations are legitimately
        non-significant at small ensemble sizes)."""
        from repro.core.solutions import ml_opt_scale, ml_ori_scale
        from repro.sim.runner import simulate_solution

        opt = ml_opt_scale(paper_params)
        ori = ml_ori_scale(paper_params)
        opt_runs = simulate_solution(
            paper_params, opt, n_runs=8, seed=1
        ).wallclocks()
        ori_runs = simulate_solution(
            paper_params, ori, n_runs=8, seed=2, max_wallclock=86_400.0 * 400
        ).wallclocks()
        assert welch_faster_than(opt_runs, ori_runs).significant

    def test_validation(self):
        with pytest.raises(ValueError):
            welch_faster_than([1.0], [2.0, 3.0])
        with pytest.raises(ValueError):
            welch_faster_than([1.0, 2.0], [2.0, 3.0], alpha=2.0)
