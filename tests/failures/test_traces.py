"""Tests for failure trace generation."""

import numpy as np
import pytest

from repro.failures.rates import FailureRates
from repro.failures.traces import (
    FailureEventRecord,
    empirical_rates_per_day,
    generate_trace,
    merge_traces,
)


@pytest.fixture
def rates():
    return FailureRates((16.0, 12.0, 8.0, 4.0), baseline_scale=1e6)


def test_trace_chronological(rates):
    trace = generate_trace(rates, 1e6, horizon_seconds=5 * 86_400.0, seed=0)
    times = [e.time for e in trace]
    assert times == sorted(times)
    assert all(0 <= t < 5 * 86_400.0 for t in times)


def test_trace_reproducible(rates):
    a = generate_trace(rates, 1e6, horizon_seconds=86_400.0, seed=42)
    b = generate_trace(rates, 1e6, horizon_seconds=86_400.0, seed=42)
    assert a == b


def test_empirical_rates_match_configuration(rates):
    horizon = 200.0 * 86_400.0
    trace = generate_trace(rates, 1e6, horizon_seconds=horizon, seed=1)
    observed = empirical_rates_per_day(trace, horizon, 4)
    assert np.allclose(observed, [16.0, 12.0, 8.0, 4.0], rtol=0.1)


def test_rates_scale_with_n(rates):
    horizon = 200.0 * 86_400.0
    trace = generate_trace(rates, 5e5, horizon_seconds=horizon, seed=1)
    observed = empirical_rates_per_day(trace, horizon, 4)
    assert np.allclose(observed, [8.0, 6.0, 4.0, 2.0], rtol=0.15)


def test_zero_rate_level_produces_no_events():
    rates = FailureRates((10.0, 0.0), baseline_scale=100.0)
    trace = generate_trace(rates, 100.0, horizon_seconds=100 * 86_400.0, seed=2)
    assert all(e.level == 1 for e in trace)


def test_merge_traces_sorted():
    a = [FailureEventRecord(1.0, 1), FailureEventRecord(5.0, 2)]
    b = [FailureEventRecord(3.0, 4)]
    merged = merge_traces(a, b)
    assert [e.time for e in merged] == [1.0, 3.0, 5.0]


def test_record_validation():
    with pytest.raises(ValueError):
        FailureEventRecord(-1.0, 1)
    with pytest.raises(ValueError):
        FailureEventRecord(1.0, 0)


def test_empirical_rates_validation():
    with pytest.raises(ValueError):
        empirical_rates_per_day([], 0.0, 4)
    with pytest.raises(ValueError):
        empirical_rates_per_day([FailureEventRecord(1.0, 5)], 100.0, 4)
