"""Tests for failure inter-arrival distributions."""

import numpy as np
import pytest

from repro.failures.distributions import (
    ExponentialArrivals,
    LognormalArrivals,
    WeibullArrivals,
)
from repro.util.rng import as_generator


@pytest.mark.parametrize(
    "process",
    [ExponentialArrivals(), WeibullArrivals(0.7), LognormalArrivals(1.0)],
    ids=["exponential", "weibull", "lognormal"],
)
class TestMeanRateCalibration:
    def test_interarrival_mean_is_inverse_rate(self, process):
        """All processes are calibrated to the same mean rate, so swapping
        distributions preserves mu (the quantity the optimizer uses)."""
        rng = as_generator(7)
        rate = 1.0 / 500.0
        gaps = process.sample_interarrivals(rate, 200_000, rng)
        assert np.mean(gaps) == pytest.approx(500.0, rel=0.03)
        assert np.all(gaps >= 0)

    def test_arrival_count_matches_rate(self, process):
        rate = 5.0 / 1_000.0
        horizon = 50_000.0
        arrivals = process.sample_arrivals(rate, horizon, seed=3)
        assert len(arrivals) == pytest.approx(rate * horizon, rel=0.15)
        assert np.all(np.diff(arrivals) >= 0)
        assert arrivals.max() < horizon

    def test_zero_rate_empty(self, process):
        assert process.sample_arrivals(0.0, 100.0, seed=1).size == 0

    def test_zero_horizon_empty(self, process):
        assert process.sample_arrivals(1.0, 0.0, seed=1).size == 0

    def test_negative_rate_rejected(self, process):
        with pytest.raises(ValueError):
            process.sample_arrivals(-1.0, 10.0)


def test_exponential_memoryless_cv():
    """Exponential inter-arrivals have coefficient of variation 1."""
    rng = as_generator(0)
    gaps = ExponentialArrivals().sample_interarrivals(0.01, 100_000, rng)
    cv = np.std(gaps) / np.mean(gaps)
    assert cv == pytest.approx(1.0, rel=0.03)


def test_weibull_shape_below_one_is_burstier():
    """k < 1 gives CV > 1 — infant-mortality burstiness."""
    rng = as_generator(0)
    gaps = WeibullArrivals(0.5).sample_interarrivals(0.01, 100_000, rng)
    cv = np.std(gaps) / np.mean(gaps)
    assert cv > 1.5


def test_weibull_shape_one_matches_exponential_mean():
    rng = as_generator(0)
    gaps = WeibullArrivals(1.0).sample_interarrivals(0.02, 100_000, rng)
    assert np.mean(gaps) == pytest.approx(50.0, rel=0.03)


def test_invalid_parameters():
    with pytest.raises(ValueError):
        WeibullArrivals(0.0)
    with pytest.raises(ValueError):
        LognormalArrivals(-1.0)
