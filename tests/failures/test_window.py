"""Tests for correlated-failure windows."""

import pytest

from repro.failures.window import CorrelatedWindow, cluster_into_windows


def test_isolated_failures_one_window_each():
    windows = cluster_into_windows([0.0, 300.0, 900.0], [1, 2, 3], window_seconds=60.0)
    assert len(windows) == 3
    assert all(w.size == 1 for w in windows)


def test_burst_grouped_into_one_window():
    """A switch failure takes several nodes within the 1-minute window."""
    times = [100.0, 110.0, 130.0, 155.0]
    nodes = [4, 5, 6, 7]
    windows = cluster_into_windows(times, nodes, window_seconds=60.0)
    assert len(windows) == 1
    assert windows[0].node_ids == (4, 5, 6, 7)
    assert windows[0].start == 100.0


def test_window_anchored_at_first_event():
    # Second event at +70s exceeds the 60s window even though the gap to
    # the previous event is 35s each: anchored windows, not sliding.
    times = [0.0, 35.0, 70.0]
    windows = cluster_into_windows(times, [1, 2, 3], window_seconds=60.0)
    assert len(windows) == 2
    assert windows[0].node_ids == (1, 2)
    assert windows[1].node_ids == (3,)


def test_repeat_node_in_window_deduplicated():
    windows = cluster_into_windows([0.0, 10.0], [3, 3], window_seconds=60.0)
    assert len(windows) == 1
    assert windows[0].node_ids == (3,)


def test_non_chronological_rejected():
    with pytest.raises(ValueError):
        cluster_into_windows([10.0, 5.0], [1, 2])


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        cluster_into_windows([1.0], [1, 2])


def test_bad_window_length_rejected():
    with pytest.raises(ValueError):
        cluster_into_windows([1.0], [1], window_seconds=0.0)


def test_window_validation():
    with pytest.raises(ValueError):
        CorrelatedWindow(start=-1.0, node_ids=(1,))
    with pytest.raises(ValueError):
        CorrelatedWindow(start=0.0, node_ids=(1, 1))


def test_empty_input():
    assert cluster_into_windows([], []) == []
