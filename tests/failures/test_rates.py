"""Tests for scale-proportional failure rates."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.failures.rates import FailureRates


@pytest.fixture
def paper_rates():
    return FailureRates.from_case_name("16-12-8-4", baseline_scale=1e6)


class TestCaseNames:
    def test_parse_standard_case(self, paper_rates):
        assert paper_rates.per_day_at_baseline == (16.0, 12.0, 8.0, 4.0)
        assert paper_rates.num_levels == 4

    def test_parse_fractional_case(self):
        rates = FailureRates.from_case_name("4-2-1-0.5")
        assert rates.per_day_at_baseline == (4.0, 2.0, 1.0, 0.5)

    def test_roundtrip(self, paper_rates):
        assert paper_rates.case_name() == "16-12-8-4"
        assert FailureRates.from_case_name("4-2-1-0.5").case_name() == "4-2-1-0.5"

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError):
            FailureRates.from_case_name("16-twelve-8")


class TestScaling:
    def test_rates_at_baseline(self, paper_rates):
        lam = paper_rates.rates_per_second(1e6)
        assert lam[0] == pytest.approx(16.0 / 86_400.0)
        assert lam[3] == pytest.approx(4.0 / 86_400.0)

    def test_rates_scale_proportionally(self, paper_rates):
        half = paper_rates.rates_per_second(5e5)
        full = paper_rates.rates_per_second(1e6)
        assert np.allclose(half, full / 2.0)

    def test_rate_derivative_constant(self, paper_rates):
        d1 = paper_rates.rate_derivatives_per_second(1.0)
        d2 = paper_rates.rate_derivatives_per_second(9e5)
        assert np.array_equal(d1, d2)
        assert d1[0] == pytest.approx(16.0 / 86_400.0 / 1e6)

    def test_total_rate(self, paper_rates):
        assert paper_rates.total_rate_per_second(1e6) == pytest.approx(
            40.0 / 86_400.0
        )


class TestExpectedFailures:
    def test_formula_22_expectation(self, paper_rates):
        # one day at the baseline scale -> exactly the per-day rates
        mu = paper_rates.expected_failures(1e6, 86_400.0)
        assert np.allclose(mu, [16.0, 12.0, 8.0, 4.0])

    def test_negative_wallclock_rejected(self, paper_rates):
        with pytest.raises(ValueError):
            paper_rates.expected_failures(1e6, -1.0)


class TestSingleLevelCollapse:
    def test_sums_rates(self, paper_rates):
        sl = paper_rates.single_level()
        assert sl.num_levels == 1
        assert sl.per_day_at_baseline[0] == pytest.approx(40.0)
        assert sl.baseline_scale == 1e6


class TestValidation:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            FailureRates((-1.0,), baseline_scale=100.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FailureRates((), baseline_scale=100.0)

    def test_bad_baseline_rejected(self):
        with pytest.raises(ValueError):
            FailureRates((1.0,), baseline_scale=0.0)


@given(
    n=st.floats(min_value=1.0, max_value=2e6),
    t=st.floats(min_value=0.0, max_value=1e8),
)
def test_mu_is_bilinear(n, t):
    """mu scales linearly in both N and wall-clock (Formula 22 + scaling)."""
    rates = FailureRates((8.0, 4.0), baseline_scale=1e6)
    mu = rates.expected_failures(n, t)
    mu2 = rates.expected_failures(2 * n, t)
    mu3 = rates.expected_failures(n, 2 * t)
    assert np.allclose(mu2, 2 * mu, rtol=1e-9)
    assert np.allclose(mu3, 2 * mu, rtol=1e-9)
