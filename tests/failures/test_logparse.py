"""Tests for failure-log ingestion."""

import pytest

from repro.cluster.topology import ClusterTopology
from repro.failures.logparse import (
    classify_node_failures,
    parse_failure_log,
    parse_node_failures,
)


PRECLASSIFIED = """
# system failure log
time,node,level
100.5,3,1
2000.0,7,2
5400.0,12,4
"""

RAW = """
time,node
10.0,3
500.0,8
505.0,9
512.0,10
2000.0,20
"""


class TestPreclassified:
    def test_parse(self):
        events = parse_failure_log(PRECLASSIFIED)
        assert [(e.time, e.level) for e in events] == [
            (100.5, 1),
            (2000.0, 2),
            (5400.0, 4),
        ]

    def test_comments_and_header_skipped(self):
        assert parse_failure_log("# only comments\n") == []

    def test_malformed_line_reported_with_number(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_failure_log("\n100.0,3\n")  # missing level column

    def test_non_chronological_rejected(self):
        with pytest.raises(ValueError, match="chronological"):
            parse_failure_log("100,1,1\n50,2,1\n")


class TestRaw:
    def test_parse_node_failures(self):
        times, nodes = parse_node_failures(RAW)
        assert times == [10.0, 500.0, 505.0, 512.0, 2000.0]
        assert nodes == [3, 8, 9, 10, 20]

    def test_bad_cells_reported(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_node_failures("abc,def\n")


class TestClassification:
    def test_windows_classified_by_topology(self):
        topology = ClusterTopology(
            num_nodes=32, nodes_per_rack=8, rs_group_size=8, rs_parity=2
        )
        events = classify_node_failures(RAW, topology, window_seconds=60.0)
        # three windows: {3}, {8,9,10}, {20}
        assert [(e.time, e.level) for e in events] == [
            (10.0, 2),  # isolated -> partner copy
            (500.0, 4),  # 3 losses in RS group 1 -> beyond parity -> PFS
            (2000.0, 2),
        ]

    def test_feeds_the_simulator(self):
        """Classified log events drive a scripted simulation directly."""
        from repro.sim.config import SimulationConfig
        from repro.sim.engine import simulate
        from repro.sim.failure_injection import ScriptedFailures

        topology = ClusterTopology(num_nodes=32, rs_group_size=8, rs_parity=2)
        events = classify_node_failures(RAW, topology)
        config = SimulationConfig(
            productive_seconds=3_000.0,
            intervals=(10, 5, 3, 2),
            checkpoint_costs=(1.0, 2.5, 4.0, 9.0),
            recovery_costs=(1.0, 2.5, 4.0, 9.0),
            failure_rates=(0.0, 0.0, 0.0, 0.0),
            allocation_period=10.0,
            jitter=0.0,
        )
        result = simulate(config, seed=0, injector=ScriptedFailures(events))
        assert result.completed
        assert result.total_failures == len(events)
