"""Tests for MTBF bridging utilities."""

import pytest

from repro.failures.mtbf import (
    rates_from_node_mtbf,
    system_mtbf_days,
    system_rate_per_day,
)


def test_system_rate_composition():
    # 10,000 nodes with 5-year MTBF each: ~5.48 failures/day
    rate = system_rate_per_day(5 * 365.0, 10_000)
    assert rate == pytest.approx(10_000 / 1_825.0)


def test_system_mtbf_inverse():
    assert system_mtbf_days(100.0, 50) == pytest.approx(2.0)


def test_rates_from_node_mtbf_taxonomy():
    rates = rates_from_node_mtbf(
        node_mtbf_days=1_000.0,
        num_nodes=4_000,
        cores_per_node=8,
        level_fractions=(0.7, 0.2, 0.1),
        transient_rate_per_core_day=1e-4,
    )
    assert rates.num_levels == 4
    assert rates.baseline_scale == 32_000.0
    hardware = 4_000 / 1_000.0  # 4 node failures/day
    assert rates.per_day_at_baseline[1] == pytest.approx(0.7 * hardware)
    assert rates.per_day_at_baseline[2] == pytest.approx(0.2 * hardware)
    assert rates.per_day_at_baseline[3] == pytest.approx(0.1 * hardware)
    assert rates.per_day_at_baseline[0] == pytest.approx(1e-4 * 32_000.0)


def test_rates_feed_the_optimizer():
    from repro.core.algorithm1 import optimize
    from repro.core.notation import ModelParameters
    from repro.costs.model import LevelCostModel
    from repro.speedup.quadratic import QuadraticSpeedup

    rates = rates_from_node_mtbf(
        node_mtbf_days=500.0,
        num_nodes=4_000,
        cores_per_node=8,
        level_fractions=(0.7, 0.2, 0.1),
        transient_rate_per_core_day=3e-4,
    )
    params = ModelParameters.from_core_days(
        2_000.0,
        speedup=QuadraticSpeedup(kappa=0.5, ideal_scale=32_000.0),
        costs=LevelCostModel.from_constants([1.0, 2.5, 4.0, 12.0]),
        rates=rates,
        allocation_period=30.0,
    )
    solution = optimize(params).solution
    assert 0 < solution.scale <= 32_000.0


def test_validation():
    with pytest.raises(ValueError):
        system_rate_per_day(0.0, 10)
    with pytest.raises(ValueError):
        system_rate_per_day(10.0, 0)
    with pytest.raises(ValueError):
        rates_from_node_mtbf(100.0, 10, 8, (0.5, 0.2))  # doesn't sum to 1
    with pytest.raises(ValueError):
        rates_from_node_mtbf(
            100.0, 10, 8, (1.0,), transient_rate_per_core_day=-1.0
        )
