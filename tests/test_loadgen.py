"""Tests for the load generator (benchmarks/loadgen.py) and its report
renderer (repro.obs.loadreport / `repro obs load`)."""

from __future__ import annotations

import json

import pytest

from benchmarks.loadgen import (
    CONFIG_POOL,
    ScheduledRequest,
    RequestResult,
    _shard_breakdown,
    batch_schedule,
    build_report,
    error_budget_section,
    make_schedule,
    percentile,
    summarize_phase,
    zipf_weights,
)
from repro.cli import main as cli_main
from repro.obs.loadreport import ReportError, format_load_report


class TestZipf:
    def test_weights_normalize_and_decrease(self):
        weights = zipf_weights(8, 1.1)
        assert sum(weights) == pytest.approx(1.0)
        assert weights == sorted(weights, reverse=True)

    def test_zero_exponent_is_uniform(self):
        assert zipf_weights(4, 0.0) == pytest.approx([0.25] * 4)

    def test_skew_concentrates_on_hot_ranks(self):
        flat = zipf_weights(8, 0.5)
        hot = zipf_weights(8, 2.0)
        assert hot[0] > flat[0]
        assert hot[-1] < flat[-1]

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)


class TestSchedules:
    def test_same_seed_same_schedule(self):
        kwargs = dict(profile="steady", rate=100.0, duration=2.0, skew=1.1)
        a = make_schedule(seed=7, **kwargs)
        b = make_schedule(seed=7, **kwargs)
        assert a == b  # frozen dataclasses: full structural equality

    def test_different_seeds_differ(self):
        a = make_schedule(seed=1, rate=100.0, duration=2.0)
        b = make_schedule(seed=2, rate=100.0, duration=2.0)
        assert a != b

    def test_arrivals_sorted_within_duration(self):
        schedule = make_schedule(
            profile="burst", rate=50.0, duration=2.0, seed=3,
            burst_period=0.5, burst_size=10,
        )
        times = [r.at for r in schedule]
        assert times == sorted(times)
        assert all(0.0 <= t < 2.0 for t in times)

    def test_rate_roughly_honored(self):
        schedule = make_schedule(rate=200.0, duration=5.0, seed=0)
        assert len(schedule) == pytest.approx(1000, rel=0.2)

    def test_burst_adds_arrivals_over_steady(self):
        steady = make_schedule(profile="steady", rate=50.0, duration=2.0, seed=5)
        burst = make_schedule(
            profile="burst", rate=50.0, duration=2.0, seed=5,
            burst_period=0.5, burst_size=25,
        )
        assert len(burst) >= len(steady) + 3 * 25

    def test_ramp_back_loaded(self):
        schedule = make_schedule(
            profile="ramp", rate=10.0, duration=4.0, seed=9, ramp_to=200.0
        )
        first_half = sum(1 for r in schedule if r.at < 2.0)
        second_half = len(schedule) - first_half
        assert second_half > first_half

    def test_mix_and_skew_applied(self):
        schedule = make_schedule(
            rate=300.0, duration=3.0, seed=11, skew=1.5,
            simulate_fraction=0.25,
        )
        endpoints = {r.endpoint for r in schedule}
        assert endpoints == {"solve", "simulate"}
        sim_frac = sum(
            1 for r in schedule if r.endpoint == "simulate"
        ) / len(schedule)
        assert sim_frac == pytest.approx(0.25, abs=0.07)
        # Zipf: rank 0 strictly most common, bodies drawn from the pool.
        counts = [0] * len(CONFIG_POOL)
        for r in schedule:
            counts[r.rank] += 1
        assert counts[0] == max(counts)
        assert counts[0] > counts[-1]

    def test_simulate_bodies_carry_fixed_sim_fields(self):
        schedule = make_schedule(rate=200.0, duration=2.0, seed=1)
        for req in schedule:
            if req.endpoint == "simulate":
                assert req.body["strategy"] == "ml-opt-scale"
                assert req.body["runs"] == 10
            else:
                assert "runs" not in req.body

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            make_schedule(rate=0.0)
        with pytest.raises(ValueError):
            make_schedule(duration=-1.0)
        with pytest.raises(ValueError):
            make_schedule(simulate_fraction=1.5)
        with pytest.raises(ValueError):
            make_schedule(profile="sawtooth")


class TestBatchSchedule:
    def _solves(self, n, start=0.0):
        return [
            ScheduledRequest(start + 0.1 * i, "solve", {"rank": i}, i)
            for i in range(n)
        ]

    def test_clumps_consecutive_solves_preserving_order(self):
        batched = batch_schedule(self._solves(5), batch_n=2)
        assert [r.endpoint for r in batched] == [
            "solve_batch", "solve_batch", "solve_batch"
        ]
        sizes = [len(r.body["requests"]) for r in batched]
        assert sizes == [2, 2, 1]
        # Fired at the first member's offset, bodies in arrival order.
        assert batched[0].at == 0.0
        assert batched[1].at == pytest.approx(0.2)
        flattened = [
            item["rank"] for r in batched for item in r.body["requests"]
        ]
        assert flattened == [0, 1, 2, 3, 4]

    def test_simulate_passes_through_and_breaks_the_run(self):
        schedule = self._solves(3)
        schedule.insert(2, ScheduledRequest(0.15, "simulate", {"s": 1}, 9))
        batched = batch_schedule(schedule, batch_n=4)
        assert [r.endpoint for r in batched] == [
            "solve_batch", "simulate", "solve_batch"
        ]
        assert len(batched[0].body["requests"]) == 2
        assert len(batched[2].body["requests"]) == 1

    def test_batch_of_one_keeps_item_rate(self):
        schedule = self._solves(4)
        batched = batch_schedule(schedule, batch_n=1)
        assert len(batched) == 4
        assert all(len(r.body["requests"]) == 1 for r in batched)

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError):
            batch_schedule([], 0)


class TestShardBreakdown:
    def test_deltas_grouped_and_sorted_by_shard(self):
        before = {
            "metrics": {
                "cluster.shard.0.requests": 10.0,
                "cluster.shard.1.requests": 4.0,
                "cluster.restarts.1": 0.0,
            }
        }
        after = {
            "metrics": {
                "cluster.shard.0.requests": 25.0,
                "cluster.shard.0.retries": 2.0,
                "cluster.shard.1.requests": 9.0,
                "cluster.restarts.1": 1.0,
                "service.executions": 99.0,  # not a shard series
                "cluster.shard.x.requests": 7.0,  # non-numeric shard id
            }
        }
        breakdown = _shard_breakdown(before, after)
        assert list(breakdown) == ["0", "1"]
        assert breakdown["0"] == {"requests": 15.0, "retries": 2.0}
        assert breakdown["1"] == {"requests": 5.0, "restarts": 1.0}

    def test_single_process_metrics_yield_empty_breakdown(self):
        snap = {"metrics": {"service.executions": 3.0}}
        assert _shard_breakdown(snap, snap) == {}
        assert _shard_breakdown(None, None) == {}

    def test_summarize_phase_attaches_shards_and_items(self):
        before = {"metrics": {"cluster.shard.0.requests": 0.0}}
        after = {"metrics": {"cluster.shard.0.requests": 2.0}}
        results = [
            RequestResult(0.0, "solve_batch", 200, 0.010, 0, items=3),
            RequestResult(0.1, "solve_batch", 200, 0.020, 0, items=2),
        ]
        phase = summarize_phase(
            "batched", [], results,
            metrics_before=before, metrics_after=after,
        )
        assert phase["shards"] == {"0": {"requests": 2.0}}
        assert phase["ok_items"] == 5
        assert phase["items_rps"] > 0.0

    def test_renderer_shows_shard_breakdown(self):
        phase = summarize_phase(
            "sustained",
            [ScheduledRequest(0.0, "solve", {}, 0)],
            [RequestResult(0.0, "solve", 200, 0.0125, 0)],
            metrics_before={"metrics": {"cluster.shard.0.requests": 0.0}},
            metrics_after={"metrics": {"cluster.shard.0.requests": 1.0}},
        )
        text = format_load_report(build_report({"seed": 0}, [phase]))
        assert "per-worker-shard breakdown" in text
        assert "shard 0: requests=1" in text


class TestSummary:
    def test_percentile_nearest_rank(self):
        samples = [float(i) for i in range(1, 101)]
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 99) == 99.0
        assert percentile([], 99) == 0.0

    def _results(self):
        return [
            RequestResult(0.0, "solve", 200, 0.010, 0),
            RequestResult(0.1, "solve", 200, 0.020, 0),
            RequestResult(0.2, "simulate", 200, 0.030, 1),
            RequestResult(0.3, "solve", 429, 0.001, 0),
        ]

    def test_summarize_phase_counts_and_rates(self):
        schedule = [
            ScheduledRequest(0.1 * i, "solve", {}, 0) for i in range(4)
        ]
        before = {"metrics": {"service.executions": 2, "service.coalesced": 0}}
        after = {"metrics": {"service.executions": 4, "service.coalesced": 2}}
        phase = summarize_phase(
            "steady", schedule, self._results(),
            metrics_before=before, metrics_after=after,
        )
        assert phase["requests"] == 4
        assert phase["ok"] == 3
        assert phase["shed"] == 1
        assert phase["errors"] == 0
        assert phase["shed_rate"] == 0.25
        assert phase["server"]["executions"] == 2
        assert phase["coalesce_ratio"] == 0.5
        assert phase["latency_ms"]["p50"] == 20.0

    def test_build_report_headline(self):
        phase = summarize_phase("sustained", [], self._results())
        report = build_report({"seed": 0}, [phase])
        assert report["kind"] == "repro.loadgen.report"
        assert report["phases"]["sustained"]["ok"] == 3
        assert report["slo"]["worst_shed_rate"] == 0.25
        assert report["slo"]["sustained_p99_ms"] == phase["latency_ms"]["p99"]


class TestErrorBudget:
    def _metrics(self):
        # What GET /metrics.json exposes after a run with --slo 99:1s:
        # 9 good / 1 bad, burn 10x against the 1% budget.
        return {
            "metrics": {
                "service.slo.state": 2.0,
                "service.slo.error_budget": 0.01,
                "service.slo.fast_burn_rate": 10.0,
                "service.slo.slow_burn_rate": 10.0,
                "service.slo.good_total": 9.0,
                "service.slo.bad_total": 1.0,
                "service.slo.budget_consumed": 10.0,
            }
        }

    def test_section_mirrors_gauges(self):
        section = error_budget_section(
            self._metrics(),
            {"status": "critical", "slo": {"state": "critical"}},
        )
        assert section == {
            "state": "critical",
            "error_budget": 0.01,
            "fast_burn_rate": 10.0,
            "slow_burn_rate": 10.0,
            "good": 9.0,
            "bad": 1.0,
            "budget_consumed": 10.0,
            "healthz_status": "critical",
            "healthz_state": "critical",
        }

    def test_none_without_slo_gauges(self):
        assert error_budget_section({"metrics": {"service.rps": 1.0}}) is None
        assert error_budget_section(None) is None

    def test_report_carries_section(self):
        phase = summarize_phase("steady", [], [])
        section = error_budget_section(self._metrics())
        report = build_report({"seed": 0}, [phase], error_budget=section)
        assert report["error_budget"]["state"] == "critical"
        no_slo = build_report({"seed": 0}, [phase], error_budget=None)
        assert "error_budget" not in no_slo

    def test_renderer_shows_budget(self):
        phase = summarize_phase("steady", [], [])
        report = build_report(
            {"seed": 0},
            [phase],
            error_budget=error_budget_section(
                self._metrics(), {"status": "critical"}
            ),
        )
        text = format_load_report(report)
        assert "error budget: state critical (healthz: critical)" in text
        assert "good 9 / bad 1" in text
        assert "10x fast / 10x slow" in text


class TestRenderer:
    def _report(self):
        phase = summarize_phase(
            "sustained",
            [ScheduledRequest(0.0, "solve", {}, 0)],
            [RequestResult(0.0, "solve", 200, 0.0125, 0)],
        )
        return build_report({"seed": 3, "rate": 100.0}, [phase])

    def test_format_contains_phases_and_slo(self):
        text = format_load_report(self._report())
        assert "sustained" in text
        assert "SLO:" in text
        assert "seed=3" in text
        assert "12.5" in text  # p50 in ms

    def test_rejects_non_reports(self):
        with pytest.raises(ReportError):
            format_load_report({"kind": "something.else"})
        with pytest.raises(ReportError):
            format_load_report(
                {"kind": "repro.loadgen.report", "phases": {}}
            )

    def test_cli_obs_load_renders_file(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        path.write_text(json.dumps(self._report()))
        assert cli_main(["obs", "load", str(path)]) == 0
        out = capsys.readouterr().out
        assert "SLO:" in out
        assert "sustained" in out

    def test_cli_obs_load_missing_file(self, capsys):
        assert cli_main(["obs", "load", "/no/such/report.json"]) == 1
        assert "no report file" in capsys.readouterr().err

    def test_cli_obs_load_requires_path(self, capsys):
        assert cli_main(["obs", "load"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_cli_obs_load_rejects_non_report_json(self, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text('{"kind": "not.a.report"}')
        assert cli_main(["obs", "load", str(path)]) == 1
        assert "error:" in capsys.readouterr().err
