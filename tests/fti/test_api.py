"""End-to-end tests of the FTI-like API on the simulated cluster."""

import numpy as np
import pytest

from repro.cluster.topology import ClusterTopology
from repro.fti.api import FTIContext
from repro.fti.levels import CheckpointLevel


@pytest.fixture
def ctx():
    topo = ClusterTopology(num_nodes=8, rs_group_size=4, rs_parity=2)
    return FTIContext(topo, ranks_per_node=2)


def _protect_all(ctx, seed=0):
    rng = np.random.default_rng(seed)
    originals = {}
    for rank in range(ctx.num_ranks):
        arr = rng.random(16)
        originals[rank] = arr.copy()
        ctx.protect(rank, "state", arr)
    return originals


def _corrupt_all(ctx):
    for rank in range(ctx.num_ranks):
        ctx._protected[rank]["state"][...] = -999.0


class TestProtection:
    def test_rank_to_node_mapping(self, ctx):
        assert ctx.node_of_rank(0) == 0
        assert ctx.node_of_rank(3) == 1
        assert ctx.num_ranks == 16

    def test_invalid_rank_rejected(self, ctx):
        with pytest.raises(ValueError):
            ctx.protect(99, "x", np.zeros(1))

    def test_checkpoint_without_protect_rejected(self, ctx):
        with pytest.raises(RuntimeError, match="protect"):
            ctx.checkpoint(1)


class TestLevel1:
    def test_software_error_recovery(self, ctx):
        originals = _protect_all(ctx)
        ctx.checkpoint(CheckpointLevel.LOCAL)
        _corrupt_all(ctx)
        decision = ctx.recover()
        assert decision.recovery_level == CheckpointLevel.LOCAL
        for rank, original in originals.items():
            assert np.allclose(ctx._protected[rank]["state"], original)

    def test_node_failure_defeats_level_1(self, ctx):
        _protect_all(ctx)
        ctx.checkpoint(CheckpointLevel.LOCAL)
        ctx.fail_nodes([0])
        with pytest.raises(ValueError, match="unrecoverable"):
            ctx.recover()


class TestLevel2:
    def test_single_node_failure(self, ctx):
        originals = _protect_all(ctx)
        ctx.checkpoint(CheckpointLevel.PARTNER)
        _corrupt_all(ctx)
        ctx.fail_nodes([2])
        decision = ctx.recover()
        assert decision.recovery_level == CheckpointLevel.PARTNER
        for rank, original in originals.items():
            assert np.allclose(ctx._protected[rank]["state"], original)

    def test_adjacent_failure_defeats_level_2(self, ctx):
        _protect_all(ctx)
        ctx.checkpoint(CheckpointLevel.PARTNER)
        ctx.fail_nodes([2, 3])
        with pytest.raises(ValueError, match="unrecoverable"):
            ctx.recover()


class TestLevel3:
    def test_adjacent_pair_recovered_by_rs(self, ctx):
        originals = _protect_all(ctx)
        ctx.checkpoint(CheckpointLevel.RS_ENCODING)
        _corrupt_all(ctx)
        ctx.fail_nodes([2, 3])  # same RS group, within parity 2
        decision = ctx.recover()
        assert decision.recovery_level == CheckpointLevel.RS_ENCODING
        for rank, original in originals.items():
            assert np.allclose(ctx._protected[rank]["state"], original)

    def test_group_wipeout_defeats_rs(self, ctx):
        _protect_all(ctx)
        ctx.checkpoint(CheckpointLevel.RS_ENCODING)
        ctx.fail_nodes([0, 1, 2])  # 3 > parity in group 0
        with pytest.raises(ValueError, match="unrecoverable"):
            ctx.recover()


class TestLevel4:
    def test_pfs_survives_anything(self, ctx):
        originals = _protect_all(ctx)
        ctx.checkpoint(CheckpointLevel.PFS)
        _corrupt_all(ctx)
        ctx.fail_nodes([0, 1, 2, 3, 4])
        decision = ctx.recover()
        assert decision.recovery_level == CheckpointLevel.PFS
        for rank, original in originals.items():
            assert np.allclose(ctx._protected[rank]["state"], original)


class TestStaleStoreCompleteness:
    """Regression tests: successive failures leave stores incomplete, and
    recovery planning must see that — not just the current failure
    pattern's topology (bug found by the functional simulator)."""

    def test_second_failure_cannot_use_depleted_partner_store(self, ctx):
        _protect_all(ctx)
        ctx.checkpoint(CheckpointLevel.PARTNER)
        ctx.fail_nodes([0])
        ctx.recover()  # fine: node 1 held node 0's copy
        # node 0's blobs were never re-checkpointed; losing node 1 now
        # destroys the only remaining copy of node 0's state, even though
        # {1} alone looks partner-survivable.
        ctx.fail_nodes([1])
        assert not ctx.checkpoints_present()[2]
        with pytest.raises(ValueError, match="unrecoverable"):
            ctx.recover()

    def test_depleted_partner_store_escalates_to_pfs(self, ctx):
        originals = _protect_all(ctx)
        ctx.checkpoint(CheckpointLevel.PFS)
        ctx.checkpoint(CheckpointLevel.PARTNER)
        ctx.fail_nodes([0])
        ctx.recover()
        ctx.fail_nodes([1])
        decision = ctx.recover()
        assert decision.recovery_level == CheckpointLevel.PFS
        for rank, original in originals.items():
            assert np.allclose(ctx._protected[rank]["state"], original)

    def test_depleted_rs_group_not_servable(self, ctx):
        _protect_all(ctx)
        ctx.checkpoint(CheckpointLevel.RS_ENCODING)
        ctx.fail_nodes([0, 1])  # group 0 at its parity limit
        ctx.recover()
        # one more loss in group 0 before any new checkpoint exceeds parity
        ctx.fail_nodes([2])
        assert not ctx.checkpoints_present()[3]
        with pytest.raises(ValueError, match="unrecoverable"):
            ctx.recover()


class TestMultilevelInteraction:
    def test_cheapest_surviving_level_chosen(self, ctx):
        """With L2 and L4 checkpoints, a nonadjacent failure uses L2."""
        _protect_all(ctx)
        ctx.checkpoint(CheckpointLevel.PFS)
        ctx.checkpoint(CheckpointLevel.PARTNER)
        ctx.fail_nodes([1, 5])
        decision = ctx.recover()
        assert decision.failure_level == CheckpointLevel.PARTNER
        assert decision.recovery_level == CheckpointLevel.PARTNER

    def test_newest_checkpoint_wins_across_levels(self, ctx):
        """FTI restores the most recent usable checkpoint, not the cheapest
        level's: an older partner checkpoint must lose to a newer PFS one."""
        _protect_all(ctx, seed=3)
        ctx.checkpoint(CheckpointLevel.PARTNER)  # older
        for rank in range(ctx.num_ranks):
            ctx._protected[rank]["state"][...] = 42.0
        ctx.checkpoint(CheckpointLevel.PFS)  # newer
        _corrupt_all(ctx)
        ctx.fail_nodes([2])  # partner-survivable, but PFS data is newer
        decision = ctx.recover()
        assert decision.recovery_level == CheckpointLevel.PFS
        for rank in range(ctx.num_ranks):
            assert np.allclose(ctx._protected[rank]["state"], 42.0)

    def test_newer_state_restored_after_second_checkpoint(self, ctx):
        _protect_all(ctx, seed=1)
        ctx.checkpoint(CheckpointLevel.PARTNER)
        # advance application state, checkpoint again
        for rank in range(ctx.num_ranks):
            ctx._protected[rank]["state"][...] = float(rank)
        ctx.checkpoint(CheckpointLevel.PARTNER)
        _corrupt_all(ctx)
        ctx.fail_nodes([6])
        ctx.recover()
        for rank in range(ctx.num_ranks):
            assert np.allclose(ctx._protected[rank]["state"], float(rank))
