"""Property tests for Reed-Solomon erasure coding (FTI level 3)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fti.rs import ReedSolomonErasure


def _random_data(k: int, width: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, 256, (k, width), dtype=np.uint8)


class TestEncodeDecode:
    def test_systematic_no_erasure_roundtrip(self):
        code = ReedSolomonErasure(k=4, m=2)
        data = _random_data(4, 64, 0)
        recovered = code.decode(data, [0, 1, 2, 3])
        assert np.array_equal(recovered, data)

    def test_all_single_erasures(self):
        code = ReedSolomonErasure(k=5, m=2)
        data = _random_data(5, 32, 1)
        parity = code.encode(data)
        stripe = np.concatenate([data, parity])
        for lost in range(5):
            indices = [i for i in range(7) if i != lost][:5]
            recovered = code.decode(stripe[indices], indices)
            assert np.array_equal(recovered, data), f"lost block {lost}"

    def test_all_double_erasures(self):
        """Exhaustive: any 2 of k+m blocks lost, the data reconstructs."""
        code = ReedSolomonErasure(k=4, m=2)
        data = _random_data(4, 16, 2)
        parity = code.encode(data)
        stripe = np.concatenate([data, parity])
        for lost in itertools.combinations(range(6), 2):
            indices = [i for i in range(6) if i not in lost][:4]
            recovered = code.decode(stripe[indices], indices)
            assert np.array_equal(recovered, data), f"lost {lost}"

    def test_parity_only_reconstruction(self):
        """k = m: all data lost, parity alone reconstructs."""
        code = ReedSolomonErasure(k=3, m=3)
        data = _random_data(3, 8, 3)
        parity = code.encode(data)
        recovered = code.decode(parity, [3, 4, 5])
        assert np.array_equal(recovered, data)


class TestValidation:
    def test_too_few_blocks_rejected(self):
        code = ReedSolomonErasure(k=4, m=2)
        data = _random_data(4, 8, 4)
        with pytest.raises(ValueError, match="exactly k"):
            code.decode(data[:3], [0, 1, 2])

    def test_duplicate_indices_rejected(self):
        code = ReedSolomonErasure(k=3, m=1)
        data = _random_data(3, 8, 5)
        with pytest.raises(ValueError, match="duplicate"):
            code.decode(data, [0, 1, 1])

    def test_out_of_range_index_rejected(self):
        code = ReedSolomonErasure(k=3, m=1)
        data = _random_data(3, 8, 6)
        with pytest.raises(ValueError):
            code.decode(data, [0, 1, 9])

    def test_wrong_data_shape_rejected(self):
        code = ReedSolomonErasure(k=3, m=1)
        with pytest.raises(ValueError):
            code.encode(_random_data(4, 8, 7))

    def test_parameter_bounds(self):
        with pytest.raises(ValueError):
            ReedSolomonErasure(k=0, m=1)
        with pytest.raises(ValueError):
            ReedSolomonErasure(k=1, m=0)
        with pytest.raises(ValueError):
            ReedSolomonErasure(k=200, m=100)  # k+m > 255

    def test_max_erasures(self):
        assert ReedSolomonErasure(k=8, m=3).max_erasures() == 3


@settings(max_examples=25, deadline=None)
@given(
    k=st.integers(min_value=2, max_value=8),
    m=st.integers(min_value=1, max_value=4),
    width=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_roundtrip_random_erasure_patterns(k, m, width, seed):
    """Any m-subset of blocks lost -> exact reconstruction (random probe)."""
    rng = np.random.default_rng(seed)
    code = ReedSolomonErasure(k=k, m=m)
    data = rng.integers(0, 256, (k, width), dtype=np.uint8)
    parity = code.encode(data)
    stripe = np.concatenate([data, parity])
    lost = set(rng.choice(k + m, size=m, replace=False).tolist())
    indices = [i for i in range(k + m) if i not in lost][:k]
    recovered = code.decode(stripe[indices], indices)
    assert np.array_equal(recovered, data)
