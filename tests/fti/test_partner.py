"""Tests for the partner-copy store."""

import pytest

from repro.cluster.topology import ClusterTopology
from repro.fti.partner import PartnerStore


@pytest.fixture
def store():
    return PartnerStore(ClusterTopology(num_nodes=8))


def test_store_places_copy_on_ring_partner(store):
    partner = store.store(3, b"state-3")
    assert partner == 4


def test_recover_prefers_local(store):
    store.store(2, b"blob")
    assert store.recover(2, failed=[]) == b"blob"


def test_recover_from_partner_after_failure(store):
    store.store(2, b"blob")
    store.drop_node(2)
    assert store.recover(2, failed=[2]) == b"blob"


def test_unrecoverable_when_partner_also_failed(store):
    store.store(2, b"blob")
    store.drop_node(2)
    store.drop_node(3)
    with pytest.raises(KeyError, match="unrecoverable"):
        store.recover(2, failed=[2, 3])


def test_recoverable_predicate_matches_topology(store):
    for node in range(8):
        store.store(node, f"blob-{node}".encode())
    assert store.recoverable([1, 5])  # non-adjacent
    assert not store.recoverable([1, 2])  # adjacent pair
    assert store.recoverable([])


def test_ring_wraparound(store):
    partner = store.store(7, b"last")
    assert partner == 0
    store.drop_node(7)
    assert store.recover(7, failed=[7]) == b"last"


def test_never_checkpointed_unrecoverable(store):
    with pytest.raises(KeyError):
        store.recover(5, failed=[5])
