"""Tests for checkpoint level definitions."""

import pytest

from repro.fti.levels import LEVEL_NAMES, CheckpointLevel


def test_four_levels_in_order():
    levels = CheckpointLevel.all_levels()
    assert [int(l) for l in levels] == [1, 2, 3, 4]


def test_display_names():
    assert CheckpointLevel.LOCAL.display_name == "local-storage"
    assert CheckpointLevel.PFS.display_name == "pfs"
    assert len(LEVEL_NAMES) == 4


def test_protection_hierarchy():
    """A checkpoint protects failures at or below its own level."""
    assert CheckpointLevel.PFS.protects_against(1)
    assert CheckpointLevel.PFS.protects_against(4)
    assert CheckpointLevel.LOCAL.protects_against(1)
    assert not CheckpointLevel.LOCAL.protects_against(2)
    assert not CheckpointLevel.RS_ENCODING.protects_against(4)


def test_protects_against_invalid_level():
    with pytest.raises(ValueError):
        CheckpointLevel.PFS.protects_against(0)


def test_int_conversion():
    assert CheckpointLevel(2) == CheckpointLevel.PARTNER
    with pytest.raises(ValueError):
        CheckpointLevel(5)
