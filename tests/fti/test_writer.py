"""Tests for checkpoint-set durability (versioning, checksums, atomicity)."""

import pytest

from repro.fti.writer import ChecksumError, CheckpointSet, CheckpointSetManager


@pytest.fixture
def manager():
    return CheckpointSetManager(keep=2)


class TestAtomicity:
    def test_uncommitted_set_unreadable(self, manager):
        cs = manager.begin(level=1)
        cs.write(0, b"data")
        with pytest.raises(RuntimeError, match="never committed"):
            cs.read(0)
        assert manager.latest is None

    def test_commit_promotes(self, manager):
        cs = manager.begin(level=2)
        cs.write(0, b"data")
        committed = manager.commit()
        assert committed.committed
        assert manager.latest is committed
        assert committed.read(0) == b"data"

    def test_abort_preserves_previous_set(self, manager):
        cs1 = manager.begin(level=1)
        cs1.write(0, b"v1")
        manager.commit()
        cs2 = manager.begin(level=1)
        cs2.write(0, b"v2-partial")
        manager.abort()  # crash mid-write
        assert manager.latest.read(0) == b"v1"

    def test_committed_set_immutable(self, manager):
        cs = manager.begin(level=1)
        cs.write(0, b"x")
        manager.commit()
        with pytest.raises(RuntimeError, match="immutable"):
            cs.write(1, b"y")

    def test_empty_commit_rejected(self, manager):
        manager.begin(level=1)
        with pytest.raises(RuntimeError, match="empty"):
            manager.commit()

    def test_commit_without_begin_rejected(self, manager):
        with pytest.raises(RuntimeError, match="no staging"):
            manager.commit()


class TestChecksums:
    def test_corruption_detected(self, manager):
        cs = manager.begin(level=1)
        cs.write(0, b"precious state")
        manager.commit()
        cs.corrupt(0)
        with pytest.raises(ChecksumError, match="checksum mismatch"):
            cs.read(0)

    def test_clean_read_roundtrips(self, manager):
        cs = manager.begin(level=3)
        payload = bytes(range(256))
        cs.write(5, payload)
        manager.commit()
        assert cs.read(5) == payload

    def test_missing_node_keyerror(self, manager):
        cs = manager.begin(level=1)
        cs.write(0, b"x")
        manager.commit()
        with pytest.raises(KeyError, match="no blob for node 9"):
            cs.read(9)


class TestRotation:
    def test_keep_policy(self):
        manager = CheckpointSetManager(keep=2)
        versions = []
        for i in range(4):
            cs = manager.begin(level=1)
            cs.write(0, f"v{i}".encode())
            versions.append(manager.commit().version)
        kept = [cs.version for cs in manager]
        assert kept == versions[-2:]

    def test_versions_monotone(self, manager):
        a = manager.begin(level=1)
        a.write(0, b"a")
        va = manager.commit().version
        b = manager.begin(level=1)
        b.write(0, b"b")
        vb = manager.commit().version
        assert vb > va

    def test_latest_at_or_above(self, manager):
        cs1 = manager.begin(level=4)
        cs1.write(0, b"pfs")
        manager.commit()
        cs2 = manager.begin(level=1)
        cs2.write(0, b"local")
        manager.commit()
        found = manager.latest_at_or_above(3)
        assert found is not None and found.level == 4
        assert manager.latest_at_or_above(1).level == 1

    def test_keep_validation(self):
        with pytest.raises(ValueError):
            CheckpointSetManager(keep=0)
