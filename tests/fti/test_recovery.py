"""Tests for the recovery planner."""

import pytest

from repro.cluster.topology import ClusterTopology
from repro.fti.levels import CheckpointLevel
from repro.fti.recovery import RecoveryPlanner


@pytest.fixture
def planner():
    return RecoveryPlanner(
        ClusterTopology(num_nodes=16, rs_group_size=8, rs_parity=2)
    )


ALL_PRESENT = {1: True, 2: True, 3: True, 4: True}


class TestClassification:
    def test_software_error_level_1(self, planner):
        assert planner.classify_failure([]) == CheckpointLevel.LOCAL

    def test_nonadjacent_level_2(self, planner):
        assert planner.classify_failure([0, 5]) == CheckpointLevel.PARTNER

    def test_adjacent_level_3(self, planner):
        assert planner.classify_failure([3, 4]) == CheckpointLevel.RS_ENCODING

    def test_group_wipeout_level_4(self, planner):
        assert planner.classify_failure([0, 1, 2]) == CheckpointLevel.PFS


class TestPlanning:
    def test_uses_cheapest_viable_level(self, planner):
        decision = planner.plan([0, 5], ALL_PRESENT)
        assert decision.failure_level == CheckpointLevel.PARTNER
        assert decision.recovery_level == CheckpointLevel.PARTNER

    def test_escalates_when_cheap_level_missing(self, planner):
        present = {1: True, 2: False, 3: False, 4: True}
        decision = planner.plan([0, 5], present)
        assert decision.failure_level == CheckpointLevel.PARTNER
        assert decision.recovery_level == CheckpointLevel.PFS

    def test_software_error_local_checkpoint_suffices(self, planner):
        decision = planner.plan([], {1: True, 2: False, 3: False, 4: False})
        assert decision.recovery_level == CheckpointLevel.LOCAL

    def test_no_viable_checkpoint_raises(self, planner):
        with pytest.raises(ValueError, match="unrecoverable"):
            planner.plan([3, 4], {1: True, 2: True, 3: False, 4: False})
