"""Field-law tests for GF(256) arithmetic."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.fti.gf256 import GF256

byte = st.integers(min_value=0, max_value=255)
nonzero_byte = st.integers(min_value=1, max_value=255)


class TestFieldLaws:
    @given(byte, byte)
    def test_mul_commutative(self, a, b):
        assert GF256.mul(a, b) == GF256.mul(b, a)

    @given(byte, byte, byte)
    def test_mul_associative(self, a, b, c):
        assert GF256.mul(GF256.mul(a, b), c) == GF256.mul(a, GF256.mul(b, c))

    @given(byte, byte, byte)
    def test_distributive(self, a, b, c):
        left = GF256.mul(a, GF256.add(b, c))
        right = GF256.add(GF256.mul(a, b), GF256.mul(a, c))
        assert left == right

    @given(byte)
    def test_multiplicative_identity(self, a):
        assert GF256.mul(a, 1) == a

    @given(byte)
    def test_zero_annihilates(self, a):
        assert GF256.mul(a, 0) == 0

    @given(nonzero_byte)
    def test_inverse(self, a):
        assert GF256.mul(a, GF256.inverse(a)) == 1

    @given(byte, nonzero_byte)
    def test_division_inverts_multiplication(self, a, b):
        assert GF256.div(GF256.mul(a, b), b) == a

    @given(byte)
    def test_addition_self_inverse(self, a):
        assert GF256.add(a, a) == 0


class TestScalarOps:
    def test_inverse_of_zero_rejected(self):
        with pytest.raises(ZeroDivisionError):
            GF256.inverse(0)

    def test_division_by_zero_rejected(self):
        with pytest.raises(ZeroDivisionError):
            GF256.div(5, 0)

    def test_pow(self):
        assert GF256.pow(2, 0) == 1
        assert GF256.pow(0, 0) == 1
        assert GF256.pow(0, 5) == 0
        # g^255 = 1 for any nonzero g
        for g in (2, 3, 7, 255):
            assert GF256.pow(g, 255) == 1

    def test_pow_negative_of_zero_rejected(self):
        with pytest.raises(ZeroDivisionError):
            GF256.pow(0, -1)

    def test_exp_log_tables_consistent(self):
        for i in range(1, 256):
            assert GF256.EXP[GF256.LOG[i]] == i


class TestArrayOps:
    def test_vectorized_mul_matches_scalar(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, 100, dtype=np.uint8)
        b = rng.integers(0, 256, 100, dtype=np.uint8)
        vec = GF256.mul(a, b)
        for i in range(100):
            assert vec[i] == GF256.mul(int(a[i]), int(b[i]))

    def test_matmul_identity(self):
        rng = np.random.default_rng(1)
        m = rng.integers(0, 256, (5, 5), dtype=np.uint8)
        eye = np.eye(5, dtype=np.uint8)
        assert np.array_equal(GF256.matmul(m, eye), m)
        assert np.array_equal(GF256.matmul(eye, m), m)

    def test_mat_inverse_roundtrip(self):
        rng = np.random.default_rng(2)
        for _ in range(5):
            m = rng.integers(0, 256, (6, 6), dtype=np.uint8)
            try:
                inv = GF256.mat_inverse(m)
            except np.linalg.LinAlgError:
                continue
            assert np.array_equal(
                GF256.matmul(m, inv), np.eye(6, dtype=np.uint8)
            )

    def test_singular_matrix_rejected(self):
        singular = np.zeros((3, 3), dtype=np.uint8)
        with pytest.raises(np.linalg.LinAlgError):
            GF256.mat_inverse(singular)

    def test_matmul_shape_validation(self):
        with pytest.raises(ValueError):
            GF256.matmul(np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 3), dtype=np.uint8))

    def test_mat_inverse_requires_square(self):
        with pytest.raises(ValueError):
            GF256.mat_inverse(np.zeros((2, 3), dtype=np.uint8))
