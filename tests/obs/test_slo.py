"""SlidingWindowRate edge cases and the SLO burn-rate engine."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SlidingWindowRate
from repro.obs.sloengine import (
    STATE_SEVERITY,
    SLOEngine,
    SLOSpec,
    merge_slo,
    merge_slo_gauges,
)


class TestSlidingWindowRate:
    def test_empty_window(self):
        w = SlidingWindowRate(10.0)
        assert w.count(now=0.0) == 0
        assert w.rate(now=0.0) == 0.0
        assert not w.saturated(now=0.0)

    def test_counts_and_rate(self):
        w = SlidingWindowRate(10.0)
        for t in (0.0, 1.0, 2.0):
            w.record(now=t)
        assert w.count(now=2.0) == 3
        assert w.rate(now=2.0) == pytest.approx(0.3)

    def test_exact_boundary_event_is_retained(self):
        # _expire drops strictly-older-than-cutoff events: an event at
        # exactly age == window is still inside the trailing window.
        w = SlidingWindowRate(10.0)
        w.record(now=0.0)
        assert w.count(now=10.0) == 1
        assert w.count(now=10.0 + 1e-9) == 0

    def test_expiry_is_lazy_but_complete(self):
        w = SlidingWindowRate(1.0)
        for t in (0.0, 0.1, 0.2):
            w.record(now=t)
        assert w.count(now=5.0) == 0

    def test_saturation_flags_undercount(self):
        # Cap of 2: the third in-window record evicts a live event, so
        # the count is a floor and saturated() must say so.
        w = SlidingWindowRate(10.0, max_events=2)
        w.record(now=0.0)
        w.record(now=1.0)
        assert not w.saturated(now=1.0)
        w.record(now=2.0)
        assert w.count(now=2.0) == 2  # honest floor, not 3
        assert w.saturated(now=2.0)

    def test_saturation_clears_after_window(self):
        w = SlidingWindowRate(10.0, max_events=2)
        for t in (0.0, 1.0, 2.0):
            w.record(now=t)
        # The evicted event (t=0) would have aged out at t=10: the
        # undercount cannot persist past that, so the flag clears.
        assert w.saturated(now=9.9)
        assert not w.saturated(now=10.0)

    def test_eviction_of_expired_event_is_not_saturation(self):
        w = SlidingWindowRate(1.0, max_events=2)
        w.record(now=0.0)
        w.record(now=0.5)
        w.record(now=5.0)  # evicts t=0, which had already expired
        assert not w.saturated(now=5.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="window"):
            SlidingWindowRate(0.0)
        with pytest.raises(ValueError, match="max_events"):
            SlidingWindowRate(1.0, max_events=0)


class TestSLOSpec:
    def test_parse_seconds(self):
        spec = SLOSpec.parse("99.9:0.25s")
        assert spec.target == pytest.approx(0.999)
        assert spec.threshold_s == pytest.approx(0.25)
        assert spec.error_budget == pytest.approx(0.001)

    def test_parse_milliseconds_and_bare(self):
        assert SLOSpec.parse("99:250ms").threshold_s == pytest.approx(0.25)
        assert SLOSpec.parse("99:0.25").threshold_s == pytest.approx(0.25)

    def test_describe_round_trips(self):
        spec = SLOSpec.parse("99.9:0.25s")
        assert SLOSpec.parse(spec.describe()) == spec

    @pytest.mark.parametrize(
        "text", ["", "99.9", ":0.25s", "99.9:", "abc:0.25s", "99:xs",
                 "0:0.25s", "100:0.25s", "99:-1s"]
    )
    def test_parse_rejects(self, text):
        with pytest.raises(ValueError):
            SLOSpec.parse(text)


def _engine(**overrides):
    kwargs = dict(
        fast_window_s=10.0,
        slow_window_s=100.0,
        min_events=4,
    )
    kwargs.update(overrides)
    return SLOEngine(SLOSpec.parse("99:1s"), **kwargs)


class TestSLOEngine:
    def test_classify_outcome_and_latency(self):
        engine = _engine()
        assert engine.classify(outcome="ok", elapsed_s=0.5)
        assert engine.classify(outcome="cache_hit", elapsed_s=1.0)
        assert not engine.classify(outcome="ok", elapsed_s=1.5)
        assert not engine.classify(outcome="shed", elapsed_s=0.0)
        assert not engine.classify(outcome="error", elapsed_s=0.0)

    def test_idle_engine_is_ok(self):
        assert _engine().state(now=0.0) == "ok"

    def test_min_events_guard(self):
        # Three straight failures on an idle service: not an incident.
        engine = _engine(min_events=4)
        for _ in range(3):
            engine.record(good=False, now=1.0)
        assert engine.state(now=1.0) == "ok"
        engine.record(good=False, now=1.0)
        assert engine.state(now=1.0) == "critical"

    def test_degraded_requires_both_windows(self):
        engine = _engine(degraded_burn=1.0, critical_burn=1000.0)
        # Old failures burning the slow window only: the fast window has
        # recovered, so the state must already be ok.
        for t in range(8):
            engine.record(good=False, now=float(t))
        for t in range(20, 30):
            engine.record(good=True, now=float(t))
        view = engine.evaluate(now=30.0)
        assert view["windows"]["slow"]["burn_rate"] >= 1.0
        assert view["windows"]["fast"]["burn_rate"] == 0.0
        assert view["state"] == "ok"

    def test_escalation_and_fast_recovery(self):
        engine = _engine()
        for _ in range(10):
            engine.record(good=False, now=5.0)
        assert engine.state(now=5.0) == "critical"
        # Fast window (10 s) drains first: recovery does not wait for
        # the slow window (100 s) to forget the incident.
        assert engine.state(now=16.0) == "ok"

    def test_degraded_between_thresholds(self):
        engine = _engine(min_events=2)
        # 5% bad with a 1% budget: burn 5.0 — above degraded (1.0),
        # below critical (14.4).
        engine.record(good=False, now=1.0)
        for _ in range(19):
            engine.record(good=True, now=1.0)
        assert engine.state(now=1.0) == "degraded"

    def test_evaluate_budget_accounting(self):
        engine = _engine()
        for _ in range(9):
            engine.record(good=True, now=1.0)
        engine.record(good=False, now=1.0)
        budget = engine.evaluate(now=1.0)["budget"]
        assert budget == {
            "good": 9,
            "bad": 1,
            "total": 10,
            "bad_fraction": 0.1,
            "consumed": 10.0,  # 10% bad against a 1% budget
        }

    def test_publish_mirrors_gauges(self):
        registry = MetricsRegistry()
        engine = _engine()
        for _ in range(9):
            engine.record(good=True, now=1.0)
        engine.record(good=False, now=1.0)
        view = engine.publish(registry, now=1.0)
        snapshot = registry.summary()
        assert snapshot["service.slo.state"] == float(
            STATE_SEVERITY[view["state"]]
        )
        assert snapshot["service.slo.good_total"] == 9.0
        assert snapshot["service.slo.bad_total"] == 1.0
        assert snapshot["service.slo.fast_total"] == 10.0
        assert snapshot["service.slo.fast_burn_rate"] == view[
            "windows"]["fast"]["burn_rate"]
        assert snapshot["service.slo.budget_consumed"] == view[
            "budget"]["consumed"]

    def test_rejects_bad_windows(self):
        spec = SLOSpec.parse("99:1s")
        with pytest.raises(ValueError, match="shorter"):
            SLOEngine(spec, fast_window_s=100.0, slow_window_s=10.0)
        with pytest.raises(ValueError, match="exceed"):
            SLOEngine(
                spec, fast_window_s=1.0, slow_window_s=10.0,
                degraded_burn=20.0, critical_burn=14.4,
            )


class TestFleetMerge:
    def _view(self, *, good, bad, now=1.0):
        engine = _engine(min_events=2)
        for _ in range(good):
            engine.record(good=True, now=now)
        for _ in range(bad):
            engine.record(good=False, now=now)
        return engine.evaluate(now=now)

    def test_merge_slo_sums_counts_and_recomputes(self):
        healthy = self._view(good=20, bad=0)
        burning = self._view(good=0, bad=20)
        fleet = merge_slo([healthy, burning])
        assert fleet["workers"] == 2
        assert fleet["budget"]["good"] == 20
        assert fleet["budget"]["bad"] == 20
        # Fleet bad fraction 0.5 against a 1% budget: burn 50, critical.
        assert fleet["windows"]["fast"]["burn_rate"] == pytest.approx(50.0)
        assert fleet["state"] == "critical"

    def test_merge_slo_empty(self):
        assert merge_slo([]) is None
        assert merge_slo([None, {}]) is None

    def test_merge_slo_gauges(self):
        registry_a, registry_b = MetricsRegistry(), MetricsRegistry()
        self._engine_into(registry_a, good=20, bad=0)
        self._engine_into(registry_b, good=0, bad=20)
        merged = merge_slo_gauges(
            [registry_a.summary(), registry_b.summary()]
        )
        assert merged["service.slo.good_total"] == 20.0
        assert merged["service.slo.bad_total"] == 20.0
        assert merged["service.slo.fast_burn_rate"] == pytest.approx(50.0)
        assert merged["service.slo.budget_consumed"] == pytest.approx(50.0)
        # State merges as the max severity any worker reports.
        assert merged["service.slo.state"] == 2.0

    def test_merge_slo_gauges_empty(self):
        assert merge_slo_gauges([]) == {}
        assert merge_slo_gauges([{}, {}]) == {}

    def _engine_into(self, registry, *, good, bad):
        engine = _engine(min_events=2)
        for _ in range(good):
            engine.record(good=True, now=1.0)
        for _ in range(bad):
            engine.record(good=False, now=1.0)
        engine.publish(registry, now=1.0)
