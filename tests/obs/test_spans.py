"""Unit tests for :mod:`repro.obs.spans`: ids, context propagation,
recorders, JSONL round-trips, and tree analysis."""

from __future__ import annotations

import threading

import pytest

from repro.obs.spans import (
    NULL_SPAN_RECORDER,
    Span,
    SpanContext,
    SpanRecorder,
    build_span_tree,
    current_context,
    current_span,
    derive_span_id,
    format_span_tree,
    get_span_recorder,
    new_trace_id,
    parse_traceparent,
    read_spans_jsonl,
    recording,
    root_context,
    self_times,
    span,
    span_from_dict,
    span_to_dict,
    span_tree_signature,
    write_spans_jsonl,
)


class TestIdentity:
    def test_trace_ids_are_32_hex_and_distinct(self):
        a, b = new_trace_id(), new_trace_id()
        assert len(a) == len(b) == 32
        assert a != b
        assert all(c in "0123456789abcdef" for c in a + b)

    def test_derived_ids_are_pure_functions_of_the_path(self):
        assert derive_span_id("p", "solve", 0) == derive_span_id("p", "solve", 0)
        assert derive_span_id("p", "solve", 0) != derive_span_id("p", "solve", 1)
        assert derive_span_id("p", "solve", 0) != derive_span_id("p", "sim", 0)
        assert derive_span_id("p", "solve", 0) != derive_span_id("q", "solve", 0)
        assert len(derive_span_id("p", "solve", 0)) == 16

    def test_child_context_keeps_trace_id(self):
        root = root_context("ab" * 16)
        child = root.child("work", 2)
        assert child.trace_id == root.trace_id
        assert child.span_id == derive_span_id(root.span_id, "work", 2)


class TestTraceparent:
    def test_round_trip(self):
        ctx = root_context()
        parsed = parse_traceparent(ctx.to_traceparent())
        assert parsed == ctx

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            "00-short-abcdefabcdef1234-01",
            "00-" + "g" * 32 + "-abcdefabcdef1234-01",  # non-hex trace
            "00-" + "0" * 32 + "-abcdefabcdef1234-01",  # all-zero trace
            "00-" + "ab" * 16 + "-" + "0" * 16 + "-01",  # all-zero span
            "00-" + "ab" * 16 + "-abcdefabcdef1234",  # missing flags
        ],
    )
    def test_malformed_headers_return_none(self, header):
        assert parse_traceparent(header) is None


class TestFastPath:
    def test_default_recorder_is_null_and_span_yields_none(self):
        assert get_span_recorder() is NULL_SPAN_RECORDER
        with span("anything") as live:
            assert live is None
            assert current_span() is None
        assert len(NULL_SPAN_RECORDER) == 0

    def test_exceptions_propagate_through_the_fast_path(self):
        with pytest.raises(RuntimeError):
            with span("anything"):
                raise RuntimeError("boom")


class TestRecording:
    def test_nesting_links_parent_and_child(self):
        rec = SpanRecorder()
        with recording(rec):
            with span("outer", trace_id="ab" * 16) as outer:
                assert current_context() == outer.context
                with span("inner") as inner:
                    assert inner.parent_id == outer.context.span_id
                    assert inner.context.trace_id == outer.context.trace_id
        names = [s.name for s in rec.spans]
        assert names == ["inner", "outer"]  # emission = completion order
        inner_span, outer_span = rec.spans
        assert inner_span.parent_id == outer_span.span_id
        # the auto sibling index is 0, so the id is reproducible
        assert inner_span.span_id == derive_span_id(
            outer_span.span_id, "inner", 0
        )

    def test_sequential_siblings_get_increasing_indices(self):
        rec = SpanRecorder()
        with recording(rec):
            with span("root", trace_id="ab" * 16) as root:
                for _ in range(3):
                    with span("step"):
                        pass
        steps = [s for s in rec.spans if s.name == "step"]
        expected = [
            derive_span_id(root.context.span_id, "step", i) for i in range(3)
        ]
        assert [s.span_id for s in steps] == expected

    def test_error_sets_status_and_reraises(self):
        rec = SpanRecorder()
        with recording(rec):
            with pytest.raises(ValueError):
                with span("bad", trace_id="ab" * 16):
                    raise ValueError("nope")
        (record,) = rec.spans
        assert record.status == "error"
        assert record.attributes["error.type"] == "ValueError"
        assert record.end >= record.start

    def test_pinned_context_is_used_verbatim(self):
        rec = SpanRecorder()
        ctx = SpanContext("ab" * 16, "cd" * 8)
        with recording(rec):
            with span("pinned", context=ctx, parent_id="ef" * 8) as live:
                assert live.context is ctx
        (record,) = rec.spans
        assert record.span_id == ctx.span_id
        assert record.parent_id == "ef" * 8

    def test_explicit_recorder_bypasses_the_process_recorder(self):
        sink = SpanRecorder()
        with span("frag", recorder=sink, trace_id="ab" * 16) as live:
            assert live is not None
        assert len(sink) == 1
        assert get_span_recorder() is NULL_SPAN_RECORDER

    def test_recorder_is_thread_safe_and_restores_context(self):
        rec = SpanRecorder()

        def work(i: int, parent: SpanContext):
            with span("task", parent=parent, index=i, recorder=rec):
                pass

        parent = root_context("ab" * 16)
        threads = [
            threading.Thread(target=work, args=(i, parent)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(rec) == 8
        assert {s.span_id for s in rec.spans} == {
            derive_span_id(parent.span_id, "task", i) for i in range(8)
        }

    def test_maxlen_ring_buffers_memory_but_not_the_sink(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        rec = SpanRecorder(path, maxlen=2)
        with recording(rec):
            for i in range(5):
                with span(f"s{i}", trace_id="ab" * 16):
                    pass
        assert [s.name for s in rec.spans] == ["s3", "s4"]
        assert [s.name for s in read_spans_jsonl(path)] == [
            f"s{i}" for i in range(5)
        ]


class TestSerialization:
    def _sample(self) -> Span:
        return Span(
            name="op",
            trace_id="ab" * 16,
            span_id="cd" * 8,
            parent_id=None,
            start=1.0,
            end=2.5,
            status="ok",
            attributes={"k": 1, "f": 0.5},
        )

    def test_dict_round_trip(self):
        record = self._sample()
        assert span_from_dict(span_to_dict(record)) == record

    def test_unknown_fields_raise(self):
        payload = span_to_dict(self._sample())
        payload["bogus"] = 1
        with pytest.raises(ValueError, match="unknown fields"):
            span_from_dict(payload)

    def test_missing_required_field_raises(self):
        payload = span_to_dict(self._sample())
        del payload["trace_id"]
        with pytest.raises(ValueError, match="missing field"):
            span_from_dict(payload)

    def test_jsonl_round_trip(self, tmp_path):
        rec = SpanRecorder()
        with recording(rec):
            with span("outer", trace_id="ab" * 16, attributes={"x": 1.5}):
                with span("inner"):
                    pass
        path = write_spans_jsonl(tmp_path / "t.jsonl", rec.spans)
        loaded = read_spans_jsonl(path)
        assert loaded == rec.spans

    def test_path_sink_appends_as_spans_finish(self, tmp_path):
        path = tmp_path / "sink.jsonl"
        rec = SpanRecorder(path)
        with recording(rec):
            with span("a", trace_id="ab" * 16):
                pass
            assert len(read_spans_jsonl(path)) == 1  # already on disk
            with span("b", trace_id="ab" * 16):
                pass
        assert [s.name for s in read_spans_jsonl(path)] == ["a", "b"]


class TestAnalysis:
    def _tree(self) -> tuple:
        rec = SpanRecorder()
        with recording(rec):
            with span("request", trace_id="ab" * 16):
                with span("solve"):
                    with span("iteration"):
                        pass
                with span("simulate"):
                    pass
        return rec.spans

    def test_signature_ignores_timing(self):
        spans_a = self._tree()
        spans_b = self._tree()
        assert span_tree_signature(spans_a) == span_tree_signature(spans_b)
        starts = {s.start for s in spans_a} | {s.start for s in spans_b}
        assert len(starts) > 1  # timestamps genuinely differ

    def test_signature_ignores_timing_attributes(self):
        # queue_wait_s / exec_s carry wall-clock measurements, so like
        # start/end they must not perturb the tree's identity ...
        def tree(wait: float, exec_s: float):
            rec = SpanRecorder()
            with recording(rec):
                with span("request", trace_id="ab" * 16):
                    with span(
                        "scheduler.execute",
                        attributes={
                            "waiters": 3,
                            "queue_wait_s": wait,
                            "exec_s": exec_s,
                        },
                    ):
                        pass
            return rec.spans

        assert span_tree_signature(tree(0.1, 0.5)) == span_tree_signature(
            tree(99.0, 0.001)
        )
        # ... while genuinely structural attributes still do.
        structural = [
            Span(**{**span_to_dict(s), "attributes": {**s.attributes, "waiters": 4}})
            if s.name == "scheduler.execute"
            else s
            for s in tree(0.1, 0.5)
        ]
        assert span_tree_signature(structural) != span_tree_signature(
            tree(0.1, 0.5)
        )

    def test_signature_sees_attribute_changes(self):
        base = self._tree()
        changed = [
            Span(**{**span_to_dict(s), "attributes": {"extra": 1}})
            for s in base
        ]
        assert span_tree_signature(base) != span_tree_signature(changed)

    def test_build_span_tree_nests_and_handles_orphans(self):
        spans = self._tree()
        roots = build_span_tree(spans)
        assert len(roots) == 1
        request, children = roots[0]
        assert request.name == "request"
        assert [c[0].name for c in children] == ["solve", "simulate"]
        # drop the root: both mid-level spans become orphan roots
        partial = [s for s in spans if s.name != "request"]
        orphan_roots = build_span_tree(partial)
        assert {r[0].name for r in orphan_roots} == {"solve", "simulate"}

    def test_self_times_decompose_the_root_duration(self):
        spans = self._tree()
        breakdown = self_times(spans)
        assert set(breakdown) == {"request", "solve", "simulate", "iteration"}
        root = next(s for s in spans if s.name == "request")
        assert sum(breakdown.values()) == pytest.approx(root.duration, abs=1e-6)

    def test_format_span_tree_renders_names_and_breakdown(self):
        spans = self._tree()
        text = format_span_tree(spans)
        assert "request" in text and "iteration" in text
        assert "self-time by phase:" in text
        assert format_span_tree(()) == "(no spans)"
