"""Logging configuration: verbosity mapping, env overrides, handler hygiene."""

import io
import logging

import pytest

from repro.obs.logconf import (
    LOG_ENV_VAR,
    configure_logging,
    get_logger,
    verbosity_to_level,
)


@pytest.fixture(autouse=True)
def _restore_logging():
    """Leave the repro logger tree the way the session found it."""
    root = logging.getLogger("repro")
    saved_handlers = list(root.handlers)
    saved_level = root.level
    yield
    root.handlers[:] = saved_handlers
    root.setLevel(saved_level)
    for name in list(logging.Logger.manager.loggerDict):
        if name.startswith("repro."):
            logging.getLogger(name).setLevel(logging.NOTSET)


def test_get_logger_prefixes_names():
    assert get_logger().name == "repro"
    assert get_logger("repro").name == "repro"
    assert get_logger("sim.engine").name == "repro.sim.engine"
    assert get_logger("repro.core").name == "repro.core"


def test_verbosity_mapping():
    assert verbosity_to_level(0) == logging.WARNING
    assert verbosity_to_level(1) == logging.INFO
    assert verbosity_to_level(2) == logging.DEBUG
    assert verbosity_to_level(7) == logging.DEBUG


def test_configure_writes_to_given_stream():
    stream = io.StringIO()
    configure_logging(1, stream=stream)
    get_logger("test").info("hello %d", 42)
    text = stream.getvalue()
    assert "hello 42" in text
    assert "repro.test" in text


def test_default_level_suppresses_info():
    stream = io.StringIO()
    configure_logging(0, stream=stream)
    get_logger("test").info("quiet")
    get_logger("test").warning("loud")
    assert "quiet" not in stream.getvalue()
    assert "loud" in stream.getvalue()


def test_reconfigure_replaces_handler_no_double_emission():
    first, second = io.StringIO(), io.StringIO()
    configure_logging(1, stream=first)
    configure_logging(1, stream=second)
    get_logger("test").info("once")
    assert "once" not in first.getvalue()
    assert second.getvalue().count("once") == 1


def test_env_bare_level(monkeypatch):
    monkeypatch.setenv(LOG_ENV_VAR, "DEBUG")
    stream = io.StringIO()
    configure_logging(0, stream=stream)
    get_logger("test").debug("deep")
    assert "deep" in stream.getvalue()


def test_env_per_logger_override(monkeypatch):
    monkeypatch.setenv(LOG_ENV_VAR, "repro.sim=DEBUG")
    stream = io.StringIO()
    configure_logging(0, stream=stream)
    get_logger("sim").debug("sim detail")
    get_logger("core").debug("core detail")
    assert "sim detail" in stream.getvalue()
    assert "core detail" not in stream.getvalue()


def test_env_bad_level_raises(monkeypatch):
    monkeypatch.setenv(LOG_ENV_VAR, "SHOUTING")
    with pytest.raises(ValueError, match="unknown log level"):
        configure_logging(0, stream=io.StringIO())


def test_no_propagation_to_python_root():
    configure_logging(0, stream=io.StringIO())
    assert logging.getLogger("repro").propagate is False
