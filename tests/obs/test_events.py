"""Round-trip and validation tests for the typed trace events."""

import math

import pytest

from repro.obs.events import (
    EVENT_TYPES,
    CheckpointDone,
    CheckpointStart,
    Failure,
    RecoveryDone,
    RecoveryStart,
    Rollback,
    RunCensored,
    SegmentComplete,
    event_from_dict,
    event_to_dict,
)

#: One instance of every registered event type, with awkward floats.
SAMPLES = (
    CheckpointStart(t=1.25, level=1, progress=0.1 + 0.2),
    CheckpointDone(t=2.5, level=2, progress=0.30000000000000004, cost=1e-17),
    Failure(t=math.pi, level=3),
    Rollback(t=4.0, level=1, progress_from=10.0, progress_to=8.0),
    RecoveryStart(t=5.0, level=2),
    RecoveryDone(t=6.0, level=2, duration=1.0),
    RecoveryDone(t=6.5, level=4, duration=0.5, interrupted=True),
    SegmentComplete(
        t=7.0,
        duration=7.0,
        productive=5.5,
        rework=0.5,
        checkpoint=1.0,
        marks_completed=3,
        progress=5.5,
    ),
    SegmentComplete(
        t=8.0,
        duration=1.0,
        productive=1.0,
        rework=0.0,
        checkpoint=0.0,
        marks_completed=0,
        progress=6.5,
        run_completed=True,
    ),
    RunCensored(t=9.0, progress=6.5),
)


def test_every_event_type_is_sampled():
    assert {type(e).__name__ for e in SAMPLES} == set(EVENT_TYPES)


@pytest.mark.parametrize("event", SAMPLES, ids=lambda e: type(e).__name__)
def test_dict_round_trip_is_identity(event):
    payload = event_to_dict(event)
    assert payload["type"] == type(event).__name__
    assert event_from_dict(payload) == event


@pytest.mark.parametrize("event", SAMPLES, ids=lambda e: type(e).__name__)
def test_json_round_trip_preserves_floats_exactly(event):
    import json

    restored = event_from_dict(json.loads(json.dumps(event_to_dict(event))))
    assert restored == event  # repr shortest round-trip: bit-exact floats


def test_events_are_hashable_and_frozen():
    event = Failure(t=1.0, level=2)
    assert hash(event) == hash(Failure(t=1.0, level=2))
    with pytest.raises(Exception):
        event.level = 3


def test_unknown_type_tag_rejected():
    with pytest.raises(ValueError, match="unknown event type"):
        event_from_dict({"type": "Meteorite", "t": 0.0})


def test_missing_type_tag_rejected():
    with pytest.raises(ValueError, match="no 'type' tag"):
        event_from_dict({"t": 0.0, "level": 1})


def test_unknown_field_rejected():
    with pytest.raises(ValueError, match="does not accept fields"):
        event_from_dict({"type": "Failure", "t": 0.0, "level": 1, "ooops": 2})


def test_unregistered_class_rejected_on_write():
    from dataclasses import dataclass

    from repro.obs.events import TraceEvent

    @dataclass(frozen=True)
    class Homemade(TraceEvent):
        pass

    with pytest.raises(TypeError, match="unregistered"):
        event_to_dict(Homemade(t=0.0))
