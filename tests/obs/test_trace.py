"""Recorder, JSONL persistence, and trace-side reconstruction tests."""

import pytest

from repro.obs.events import (
    CheckpointDone,
    CheckpointStart,
    Failure,
    RecoveryDone,
    RecoveryStart,
    Rollback,
    SegmentComplete,
)
from repro.obs.trace import (
    NULL_RECORDER,
    NullRecorder,
    TraceRecorder,
    checkpoint_counts,
    failure_counts,
    portions_from_events,
    read_ensemble_jsonl,
    read_jsonl,
    wallclock_from_events,
    write_ensemble_jsonl,
    write_jsonl,
)

EVENTS = (
    CheckpointStart(t=10.0, level=1, progress=10.0),
    CheckpointDone(t=11.0, level=1, progress=10.0, cost=1.0),
    Failure(t=15.0, level=2),
    Rollback(t=15.0, level=2, progress_from=14.0, progress_to=10.0),
    RecoveryStart(t=15.0, level=2),
    RecoveryDone(t=18.0, level=2, duration=3.0),
    SegmentComplete(
        t=15.0,
        duration=15.0,
        productive=14.0,
        rework=0.0,
        checkpoint=1.0,
        marks_completed=1,
        progress=14.0,
    ),
    SegmentComplete(
        t=30.0,
        duration=12.0,
        productive=6.0,
        rework=4.0,
        checkpoint=2.0,
        marks_completed=2,
        progress=20.0,
        run_completed=True,
    ),
)


class TestRecorders:
    def test_null_recorder_is_inactive_and_empty(self):
        assert NULL_RECORDER.active is False
        NULL_RECORDER.emit(Failure(t=0.0, level=1))  # silently dropped
        assert NULL_RECORDER.events == ()
        assert len(NULL_RECORDER) == 0

    def test_null_recorder_has_no_instance_dict(self):
        # __slots__: the fast path allocates nothing per emit.
        assert not hasattr(NullRecorder(), "__dict__")

    def test_recorder_preserves_order(self):
        rec = TraceRecorder()
        assert rec.active is True
        for event in EVENTS:
            rec.emit(event)
        assert rec.events == EVENTS
        assert len(rec) == len(EVENTS)

    def test_ring_buffer_keeps_newest(self):
        rec = TraceRecorder(maxlen=3)
        for event in EVENTS:
            rec.emit(event)
        assert rec.events == EVENTS[-3:]

    def test_clear(self):
        rec = TraceRecorder()
        rec.emit(EVENTS[0])
        rec.clear()
        assert rec.events == ()


class TestJsonl:
    def test_round_trip_equality(self, tmp_path):
        path = write_jsonl(tmp_path / "run.jsonl", EVENTS)
        assert read_jsonl(path) == EVENTS

    def test_round_trip_empty(self, tmp_path):
        path = write_jsonl(tmp_path / "empty.jsonl", ())
        assert read_jsonl(path) == ()

    def test_creates_parent_directories(self, tmp_path):
        path = write_jsonl(tmp_path / "deep" / "nested" / "run.jsonl", EVENTS)
        assert path.exists()

    def test_ensemble_round_trip(self, tmp_path):
        traces = (EVENTS[:3], (), EVENTS[3:])
        path = write_ensemble_jsonl(tmp_path / "ens.jsonl", traces)
        restored = read_ensemble_jsonl(path)
        # Empty middle replica survives because run 2's lines imply 3 runs.
        assert restored == traces

    def test_ensemble_round_trip_empty(self, tmp_path):
        path = write_ensemble_jsonl(tmp_path / "none.jsonl", ())
        assert read_ensemble_jsonl(path) == ()

    def test_ensemble_lines_are_run_tagged(self, tmp_path):
        import json

        path = write_ensemble_jsonl(tmp_path / "ens.jsonl", (EVENTS, EVENTS))
        runs = [
            json.loads(line)["run"]
            for line in path.read_text().splitlines()
        ]
        assert runs == [0] * len(EVENTS) + [1] * len(EVENTS)


class TestReconstruction:
    def test_failure_counts(self):
        assert failure_counts(EVENTS, 4) == (0, 1, 0, 0)

    def test_checkpoint_counts_only_completed(self):
        # One Start+Done pair at level 1; the Start alone would be aborted.
        assert checkpoint_counts(EVENTS, 4) == (1, 0, 0, 0)

    def test_portions(self):
        portions = portions_from_events(EVENTS)
        assert portions == {
            "productive": 20.0,
            "rollback": 4.0,
            "checkpoint": 3.0,
            "restart": 3.0,
        }

    def test_wallclock_sums_segments_and_recoveries(self):
        assert wallclock_from_events(EVENTS) == 15.0 + 12.0 + 3.0

    def test_interrupted_recovery_still_counts_as_restart(self):
        events = (
            RecoveryDone(t=5.0, level=1, duration=2.0, interrupted=True),
            RecoveryDone(t=9.0, level=2, duration=4.0),
        )
        assert portions_from_events(events)["restart"] == 6.0


def test_recorder_rejects_non_positive_maxlen():
    with pytest.raises(ValueError):
        TraceRecorder(maxlen=0)
