"""Counter/gauge/histogram semantics and snapshot/merge determinism."""

import math

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)


class TestPrimitives:
    def test_counter_inc_add(self):
        c = Counter()
        c.inc()
        c.add(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="monotone"):
            Counter().add(-1)

    def test_counter_integer_adds_stay_exact(self):
        c = Counter()
        for _ in range(10_000):
            c.add(3)
        assert c.value == 30_000

    def test_gauge_overwrites(self):
        g = Gauge()
        g.set(5.0)
        g.set(2.0)
        assert g.value == 2.0

    def test_histogram_aggregates(self):
        h = Histogram()
        h.extend([1.0, 2.0, 3.0])
        assert h.samples == (1.0, 2.0, 3.0)
        assert h.count == 3
        assert h.sum == 6.0
        assert h.mean == 2.0
        assert (h.min, h.max) == (1.0, 3.0)

    def test_histogram_empty_aggregates(self):
        h = Histogram()
        assert h.count == 0
        assert h.mean == 0.0
        assert math.isnan(h.min) and math.isnan(h.max)

    def test_histogram_ring_buffer(self):
        h = Histogram(maxlen=2)
        h.extend([1.0, 2.0, 3.0])
        assert h.samples == (2.0, 3.0)

    def test_histogram_rejects_bad_maxlen(self):
        with pytest.raises(ValueError):
            Histogram(maxlen=0)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="is a Counter"):
            reg.gauge("a")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("")

    def test_names_insertion_ordered(self):
        reg = MetricsRegistry()
        for name in ("z", "a", "m"):
            reg.counter(name)
        assert reg.names() == ("z", "a", "m")

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert reg.names() == ()

    def test_snapshot_prefix_filter(self):
        reg = MetricsRegistry()
        reg.counter("sim.runs").inc()
        reg.counter("memo.hits").inc()
        assert set(reg.snapshot(prefix="sim.")) == {"sim.runs"}

    def test_snapshot_is_json_serializable(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c").add(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").extend([0.25, 0.5])
        assert json.loads(json.dumps(reg.snapshot())) == reg.snapshot()

    def test_summary_compacts_histograms(self):
        reg = MetricsRegistry()
        reg.counter("c").add(2)
        reg.histogram("h").extend([1.0, 3.0])
        summary = reg.summary()
        assert summary["c"] == 2
        assert summary["h"] == {
            "count": 2,
            "sum": 4.0,
            "min": 1.0,
            "max": 3.0,
            "p50": 1.0,  # nearest-rank over [1.0, 3.0]
            "p95": 3.0,
            "p99": 3.0,
        }


class TestBucketedHistogram:
    def test_boundary_value_lands_in_its_bucket(self):
        """Prometheus ``le`` semantics: a bucket counts observations
        less than OR EQUAL to its upper bound."""
        h = Histogram(buckets=(0.1, 1.0))
        h.observe(0.1)
        assert h.bucket_counts() == (1, 0, 0)
        h.observe(1.0)
        assert h.bucket_counts() == (1, 1, 0)
        h.observe(1.0000001)
        assert h.bucket_counts() == (1, 1, 1)

    def test_cumulative_buckets_end_with_inf_total(self):
        h = Histogram(buckets=(0.1, 1.0))
        h.extend([0.05, 0.5, 5.0, 50.0])
        cumulative = h.cumulative_buckets()
        assert cumulative == ((0.1, 1), (1.0, 2), (math.inf, 4))
        assert h.total_count == 4

    def test_observed_count_survives_the_ring_buffer(self):
        h = Histogram(maxlen=2, buckets=(0.1, 1.0))
        h.extend([0.05, 0.05, 0.05])
        assert h.samples == (0.05, 0.05)  # window trimmed
        assert h.total_count == 3      # buckets keep the full count

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="non-empty"):
            Histogram(buckets=())

    def test_latency_buckets_are_strictly_increasing(self):
        assert list(LATENCY_BUCKETS) == sorted(set(LATENCY_BUCKETS))

    def test_chunked_bucket_merge_equals_serial(self):
        samples = [0.0005 * (2**i) for i in range(14)]
        serial = MetricsRegistry()
        for s in samples:
            serial.histogram("lat", buckets=LATENCY_BUCKETS).observe(s)

        merged = MetricsRegistry()
        for chunk in (samples[:5], samples[5:9], samples[9:]):
            reg = MetricsRegistry()
            for s in chunk:
                reg.histogram("lat", buckets=LATENCY_BUCKETS).observe(s)
            merged.merge_snapshot(reg.snapshot())

        assert merged.snapshot() == serial.snapshot()

    def test_merge_rejects_mismatched_layouts(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(0.1, 1.0))
        b = MetricsRegistry()
        b.histogram("h", buckets=(0.1, 1.0, 10.0))
        with pytest.raises(ValueError, match="bucket layout mismatch"):
            a.merge_snapshot(b.snapshot())


class TestMerge:
    def test_merge_semantics_per_type(self):
        a = MetricsRegistry()
        a.counter("c").add(2)
        a.gauge("g").set(1.0)
        a.histogram("h").observe(1.0)
        b = MetricsRegistry()
        b.counter("c").add(3)
        b.gauge("g").set(9.0)
        b.histogram("h").observe(2.0)

        a.merge_snapshot(b.snapshot())
        assert a.counter("c").value == 5       # counters add
        assert a.gauge("g").value == 9.0       # gauges take the newer value
        assert a.histogram("h").samples == (1.0, 2.0)  # histograms append

    def test_merge_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown metric type"):
            MetricsRegistry().merge_snapshot({"x": {"type": "meter"}})

    def test_chunked_merge_equals_serial(self):
        """The determinism contract: merging per-chunk snapshots in chunk
        order reproduces the serial registry bit for bit."""
        samples = [0.1 * i for i in range(20)]

        serial = MetricsRegistry()
        for s in samples:
            serial.counter("n").inc()
            serial.histogram("w").observe(s)

        chunks = [samples[0:7], samples[7:13], samples[13:20]]
        snaps = []
        for chunk in chunks:
            reg = MetricsRegistry()
            for s in chunk:
                reg.counter("n").inc()
                reg.histogram("w").observe(s)
            snaps.append(reg.snapshot())

        assert merge_snapshots(*snaps) == serial.snapshot()

    def test_merge_snapshots_empty(self):
        assert merge_snapshots() == {}
