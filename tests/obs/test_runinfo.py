"""Last-run summary persistence and rendering."""

import pytest

from repro.obs.runinfo import (
    OBS_DIR_ENV_VAR,
    format_last_run,
    last_run_path,
    obs_dir,
    read_last_run,
    write_last_run,
)

PAYLOAD = {
    "command": "experiment",
    "argv": ["experiment", "fig5", "--trace-dir", "out"],
    "exit_code": 0,
    "phase_seconds": {"solve": 1.25, "simulate": 10.5},
    "metrics": {"sim.runs": 600, "sim.wallclock": {"count": 600, "sum": 1e6}},
    "trace_files": ["out/fig5_8-4-2-1_ml-opt-scale.jsonl"],
}


def test_obs_dir_resolution(monkeypatch, tmp_path):
    assert obs_dir("explicit") == __import__("pathlib").Path("explicit")
    monkeypatch.setenv(OBS_DIR_ENV_VAR, str(tmp_path / "env"))
    assert obs_dir() == tmp_path / "env"
    monkeypatch.delenv(OBS_DIR_ENV_VAR)
    assert obs_dir() == __import__("pathlib").Path(".repro-obs")


def test_write_read_round_trip(tmp_path):
    path = write_last_run(PAYLOAD, tmp_path / "obs")
    assert path == last_run_path(tmp_path / "obs")
    assert read_last_run(tmp_path / "obs") == PAYLOAD


def test_read_missing_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        read_last_run(tmp_path / "nothing-here")


def test_env_var_directs_writes(monkeypatch, tmp_path):
    monkeypatch.setenv(OBS_DIR_ENV_VAR, str(tmp_path / "via-env"))
    write_last_run(PAYLOAD)
    assert (tmp_path / "via-env" / "last_run.json").exists()


def test_format_renders_every_section():
    text = format_last_run(PAYLOAD)
    assert "repro experiment fig5 --trace-dir out" in text
    assert "exit code: 0" in text
    assert "solve" in text and "1.2500s" in text
    assert "sim.runs" in text
    assert "fig5_8-4-2-1_ml-opt-scale.jsonl" in text


def test_format_minimal_payload():
    assert "repro optimize" in format_last_run({"command": "optimize"})
