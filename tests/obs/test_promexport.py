"""Prometheus text exposition: canonical output, type mapping, buckets."""

import pytest

from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry
from repro.obs.promexport import (
    PROMETHEUS_CONTENT_TYPE,
    prometheus_text,
    sanitize_metric_name,
)


class TestNames:
    @pytest.mark.parametrize(
        ("raw", "expected"),
        [
            ("memo.hits", "repro_memo_hits"),
            ("service.request_seconds.solve", "repro_service_request_seconds_solve"),
            ("already_ok", "repro_already_ok"),
            ("1weird", "repro__1weird"),
            ("sim runs/total", "repro_sim_runs_total"),
        ],
    )
    def test_sanitization(self, raw, expected):
        assert sanitize_metric_name(raw) == expected

    def test_content_type_pins_exposition_version(self):
        assert PROMETHEUS_CONTENT_TYPE == "text/plain; version=0.0.4"


class TestRendering:
    def test_exactly_one_input_required(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="exactly one"):
            prometheus_text()
        with pytest.raises(ValueError, match="exactly one"):
            prometheus_text(reg.snapshot(), registry=reg)

    def test_empty_registry_renders_empty_document(self):
        assert prometheus_text(registry=MetricsRegistry()) == ""

    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("memo.hits").add(3)
        reg.gauge("memo.size").set(2.0)
        text = prometheus_text(registry=reg)
        assert "# TYPE repro_memo_hits counter\nrepro_memo_hits 3\n" in text
        assert "# TYPE repro_memo_size gauge\nrepro_memo_size 2\n" in text

    def test_integral_floats_render_without_fraction(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(5.0)
        reg.counter("c").add(0.25)
        text = prometheus_text(registry=reg)
        assert "repro_g 5\n" in text
        assert "repro_c 0.25\n" in text

    def test_bucketed_histogram_is_cumulative_with_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.1, 0.5, 5.0):
            h.observe(value)
        text = prometheus_text(registry=reg)
        assert "# TYPE repro_lat histogram" in text
        # le=0.1 is cumulative and INCLUSIVE of the boundary observation
        assert 'repro_lat_bucket{le="0.1"} 2' in text
        assert 'repro_lat_bucket{le="1"} 3' in text
        assert 'repro_lat_bucket{le="+Inf"} 4' in text
        assert "repro_lat_sum 5.65" in text
        assert "repro_lat_count 4" in text

    def test_bucketless_histogram_renders_summary_quantiles(self):
        reg = MetricsRegistry()
        reg.histogram("h").extend([float(i) for i in range(1, 101)])
        text = prometheus_text(registry=reg)
        assert "# TYPE repro_h summary" in text
        assert 'repro_h{quantile="0.5"} 50' in text
        assert 'repro_h{quantile="0.95"} 95' in text
        assert 'repro_h{quantile="0.99"} 99' in text
        assert "repro_h_count 100" in text

    def test_empty_summary_quantiles_are_nan(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        text = prometheus_text(registry=reg)
        assert 'repro_h{quantile="0.5"} NaN' in text
        assert "repro_h_count 0" in text

    def test_unknown_metric_type_rejected(self):
        with pytest.raises(ValueError, match="unknown metric type"):
            prometheus_text({"x": {"type": "meter"}})


class TestCanonicality:
    def test_equal_registries_render_byte_identical_documents(self):
        """Insertion order must not leak into the exposition output."""
        a = MetricsRegistry()
        a.counter("zeta").add(1)
        a.gauge("alpha").set(2.0)
        a.histogram("mid", buckets=LATENCY_BUCKETS).observe(0.02)

        b = MetricsRegistry()
        b.histogram("mid", buckets=LATENCY_BUCKETS).observe(0.02)
        b.counter("zeta").add(1)
        b.gauge("alpha").set(2.0)

        text_a = prometheus_text(registry=a)
        text_b = prometheus_text(registry=b)
        assert text_a == text_b
        assert text_a.index("repro_alpha") < text_a.index("repro_mid")
        assert text_a.index("repro_mid") < text_a.index("repro_zeta")

    def test_latency_buckets_emit_every_bound_plus_inf(self):
        reg = MetricsRegistry()
        reg.histogram("svc", buckets=LATENCY_BUCKETS).observe(0.003)
        text = prometheus_text(registry=reg)
        bucket_lines = [
            line for line in text.splitlines() if "repro_svc_bucket" in line
        ]
        assert len(bucket_lines) == len(LATENCY_BUCKETS) + 1
        assert bucket_lines[-1] == 'repro_svc_bucket{le="+Inf"} 1'
