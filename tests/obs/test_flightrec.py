"""Flight-recorder retention policy and canonical span stitching."""

import pytest

from repro.obs.flightrec import FlightRecorder, stitch_spans
from repro.obs.spans import NULL_SPAN_RECORDER, Span, SpanRecorder


def _span(
    trace: str,
    name: str = "server.request",
    *,
    start: float = 0.0,
    end: float = 1.0,
    parent: str | None = None,
    status: str = "ok",
) -> Span:
    return Span(
        name=name,
        trace_id=trace,
        span_id=f"{trace}-{name}-{start}-{end}",
        parent_id=parent,
        start=start,
        end=end,
        status=status,
    )


def _complete(rec: FlightRecorder, trace: str, *, duration: float = 1.0):
    """Emit one child + root pair, completing ``trace``."""
    rec.emit(_span(trace, "scheduler.execute", start=0.1, end=duration - 0.1))
    rec.emit(_span(trace, "server.request", start=0.0, end=duration))


class TestRecorderProtocol:
    def test_active_mirrors_inner(self, tmp_path):
        assert not FlightRecorder(NULL_SPAN_RECORDER).active
        live = SpanRecorder(tmp_path / "spans.jsonl")
        assert FlightRecorder(live).active

    def test_forwards_to_inner(self, tmp_path):
        inner = SpanRecorder(tmp_path / "spans.jsonl")
        rec = FlightRecorder(inner)
        _complete(rec, "t1")
        assert [s.trace_id for s in inner.spans] == ["t1", "t1"]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError, match="keep_slowest"):
            FlightRecorder(capacity=4, keep_slowest=4)
        with pytest.raises(ValueError, match="max_pending"):
            FlightRecorder(max_pending=0)


class TestRetention:
    def test_get_returns_completed_spans(self):
        rec = FlightRecorder()
        _complete(rec, "t1")
        spans = rec.get("t1")
        assert {s.name for s in spans} == {"scheduler.execute", "server.request"}
        assert rec.get("missing") is None

    def test_pending_fragments_visible(self):
        rec = FlightRecorder()
        rec.emit(_span("t1", "client.request"))
        assert [s.name for s in rec.get("t1")] == ["client.request"]
        assert rec.stats()["pending"] == 1
        assert len(rec) == 0

    def test_ring_evicts_oldest_first(self):
        rec = FlightRecorder(capacity=3, keep_slowest=0)
        for i in range(5):
            _complete(rec, f"t{i}")
        assert rec.get("t0") is None
        assert rec.get("t1") is None
        assert [e["trace_id"] for e in rec.recent()] == ["t4", "t3", "t2"]

    def test_wraparound_keeps_slowest(self):
        rec = FlightRecorder(capacity=4, keep_slowest=1)
        _complete(rec, "slow", duration=9.0)
        for i in range(10):
            _complete(rec, f"fast{i}", duration=0.5)
        # The slow trace left the ring long ago but stays reachable.
        assert rec.get("slow") is not None
        assert [e["trace_id"] for e in rec.slowest()] == ["slow"]
        assert len(rec) <= rec.capacity + rec.keep_slowest

    def test_slow_set_displacement_drops_unreachable(self):
        rec = FlightRecorder(capacity=4, keep_slowest=1)
        _complete(rec, "medium", duration=5.0)
        for i in range(6):
            _complete(rec, f"fast{i}", duration=0.5)
        assert rec.get("medium") is not None  # protected survivor
        # A slower trace takes the slot; "medium" (not in the ring any
        # more) becomes unreachable and is deleted outright.
        _complete(rec, "slowest", duration=9.0)
        assert rec.get("medium") is None
        assert rec.get("slowest") is not None
        assert [e["trace_id"] for e in rec.slowest()] == ["slowest"]

    def test_faster_trace_does_not_displace(self):
        rec = FlightRecorder(capacity=4, keep_slowest=1)
        _complete(rec, "slow", duration=9.0)
        _complete(rec, "quick", duration=0.1)
        assert [e["trace_id"] for e in rec.slowest()] == ["slow"]

    def test_pending_eviction_oldest_first(self):
        rec = FlightRecorder(max_pending=2)
        rec.emit(_span("p0", "client.request"))
        rec.emit(_span("p1", "client.request"))
        rec.emit(_span("p2", "client.request"))
        assert rec.get("p0") is None
        assert rec.get("p1") is not None
        assert rec.get("p2") is not None

    def test_repeated_completion_absorbs(self):
        rec = FlightRecorder()
        _complete(rec, "t1", duration=1.0)
        _complete(rec, "t1", duration=3.0)
        (entry,) = rec.recent()
        assert entry["completions"] == 2
        assert entry["duration_s"] == pytest.approx(3.0)
        assert entry["spans"] == 4
        assert len(rec) == 1

    def test_non_ok_root_status_wins(self):
        rec = FlightRecorder()
        rec.emit(_span("t1", "server.request"))
        rec.emit(_span("t1", "server.request", status="error"))
        rec.emit(_span("t1", "server.request"))
        (entry,) = rec.recent()
        assert entry["status"] == "error"

    def test_recent_newest_first_with_limit(self):
        rec = FlightRecorder()
        for i in range(5):
            _complete(rec, f"t{i}")
        assert [e["trace_id"] for e in rec.recent(limit=2)] == ["t4", "t3"]


class TestStitchSpans:
    def test_orders_by_end_then_start_then_id(self):
        spans = [
            _span("t", "c", start=0.5, end=2.0),
            _span("t", "a", start=0.0, end=1.0),
            _span("t", "b", start=0.2, end=1.0),
        ]
        assert [s.name for s in stitch_spans(spans)] == ["a", "b", "c"]

    def test_merge_order_invariant(self):
        shard_a = [
            _span("t", "a", start=0.0, end=1.0),
            _span("t", "root", start=0.0, end=3.0),
        ]
        shard_b = [_span("t", "b", start=0.5, end=2.0)]
        assert stitch_spans(shard_a + shard_b) == stitch_spans(
            shard_b + shard_a
        )
