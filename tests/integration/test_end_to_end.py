"""End-to-end pipeline tests: public API -> optimizer -> simulator."""

import numpy as np
import pytest

import repro


def test_quickstart_pipeline():
    """The README quickstart, verbatim, produces sane results."""
    params = repro.ModelParameters.from_core_days(
        3e6,
        speedup=repro.QuadraticSpeedup(kappa=0.46, ideal_scale=1e6),
        costs=repro.fusion_cost_models(),
        rates=repro.FailureRates.from_case_name("8-4-2-1", baseline_scale=1e6),
        allocation_period=60.0,
    )
    solution = repro.ml_opt_scale(params)
    assert 1e5 < solution.scale < 1e6
    ensemble = repro.simulate_solution(params, solution, n_runs=5, seed=0)
    assert ensemble.all_completed
    assert ensemble.mean_wallclock > params.productive_time(solution.scale)


def test_custom_speedup_model_plugs_in(small_params):
    """Any SpeedupModel subclass works with the solvers (the paper's
    'easily extended to more complicated speedup functions')."""
    from dataclasses import replace

    params = replace(
        small_params, speedup=repro.AmdahlSpeedup(0.001, max_scale=5_000.0)
    )
    solution = repro.ml_opt_scale(params)
    assert 0 < solution.scale <= 5_000.0


def test_weak_scaling_scenario(small_params):
    """Gustafson speedup (weak scaling) is supported end to end."""
    from dataclasses import replace

    params = replace(
        small_params, speedup=repro.GustafsonSpeedup(0.05, max_scale=4_000.0)
    )
    solution = repro.ml_opt_scale(params)
    ensemble = repro.simulate_solution(params, solution, n_runs=3, seed=1)
    assert ensemble.all_completed


def test_two_level_model(small_params):
    """The model is generic in L: a 2-level (local + PFS) system works."""
    two_level = repro.ModelParameters.from_core_days(
        200.0,
        speedup=repro.QuadraticSpeedup(kappa=0.5, ideal_scale=2_000.0),
        costs=repro.LevelCostModel.from_constants([1.0, 12.0]),
        rates=repro.FailureRates((30.0, 5.0), baseline_scale=2_000.0),
        allocation_period=30.0,
    )
    solution = repro.ml_opt_scale(two_level)
    assert solution.num_levels == 2
    assert solution.intervals[0] > solution.intervals[1]


def test_strategies_comparable_under_simulation(small_params):
    """Simulated means reproduce the analytic strategy ordering."""
    solutions = repro.compare_all_strategies(small_params)
    means = {}
    for name, sol in solutions.items():
        sim_params = (
            small_params.single_level()
            if sol.num_levels == 1
            else small_params
        )
        ens = repro.simulate_solution(
            sim_params, sol, n_runs=20, seed=3, max_wallclock=1e8
        )
        means[name] = ens.mean_wallclock
    assert means["ml-opt-scale"] == min(means.values())
