"""Randomized failure campaign against the functional FTI stack.

Property-style integration test: random node-failure bursts (grouped into
correlated windows like real switch/power events) hit an application
checkpointed at a random level; the recovery planner's *prediction* of the
needed level must always match what the functional stores can actually
serve, and recovered state must be exact whenever recovery is possible.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.topology import ClusterTopology
from repro.failures.window import cluster_into_windows
from repro.fti.api import FTIContext
from repro.fti.levels import CheckpointLevel
from repro.fti.recovery import RecoveryPlanner


@settings(max_examples=30, deadline=None)
@given(
    ckpt_level=st.sampled_from([2, 3, 4]),
    failed=st.sets(st.integers(min_value=0, max_value=15), min_size=1, max_size=5),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_recovery_matches_planner_prediction(ckpt_level, failed, seed):
    topology = ClusterTopology(num_nodes=16, rs_group_size=8, rs_parity=2)
    planner = RecoveryPlanner(topology)
    ctx = FTIContext(topology, ranks_per_node=1)
    rng = np.random.default_rng(seed)
    originals = {}
    for rank in range(16):
        arr = rng.random(8)
        originals[rank] = arr.copy()
        ctx.protect(rank, "state", arr)
    ctx.checkpoint(CheckpointLevel(ckpt_level))

    needed = planner.classify_failure(failed)
    ctx.fail_nodes(failed)
    # Recoverability is the *checkpoint level's own* survival predicate:
    # e.g. an RS(8, m=2) checkpoint cannot serve three losses in one group
    # even when they are pairwise non-adjacent (failure classified level 2).
    if ckpt_level == 2:
        checkpoint_survives = topology.partner_survives(failed)
    elif ckpt_level == 3:
        checkpoint_survives = topology.rs_survives(failed)
    else:
        checkpoint_survives = True
    if checkpoint_survives:
        decision = ctx.recover()
        assert decision.failure_level == needed
        assert int(decision.recovery_level) == ckpt_level
        for rank, original in originals.items():
            assert np.allclose(ctx._protected[rank]["state"], original)
    else:
        with pytest.raises(ValueError, match="unrecoverable"):
            ctx.recover()


def test_correlated_window_burst_classification():
    """A realistic campaign: failure bursts from shared racks, grouped into
    windows, classified, and recovered at escalating levels."""
    topology = ClusterTopology(
        num_nodes=32, nodes_per_rack=8, rs_group_size=8, rs_parity=2
    )
    planner = RecoveryPlanner(topology)
    # chronological stream: an isolated crash, then a rack-switch burst
    times = [10.0, 500.0, 505.0, 512.0, 2_000.0]
    nodes = [3, 8, 9, 10, 20]
    windows = cluster_into_windows(times, nodes, window_seconds=60.0)
    assert [w.node_ids for w in windows] == [(3,), (8, 9, 10), (20,)]

    levels = [planner.classify_failure(w.node_ids) for w in windows]
    assert levels[0] == CheckpointLevel.PARTNER  # isolated node
    assert levels[1] == CheckpointLevel.PFS  # 3 in one RS group > parity
    assert levels[2] == CheckpointLevel.PARTNER

    # with a PFS checkpoint present, every window is recoverable
    ctx = FTIContext(topology, ranks_per_node=1)
    rng = np.random.default_rng(0)
    for rank in range(32):
        ctx.protect(rank, "state", rng.random(4))
    ctx.checkpoint(CheckpointLevel.PFS)
    for window, expected_level in zip(windows, levels):
        ctx.fail_nodes(window.node_ids)
        decision = ctx.recover()
        assert decision.failure_level == expected_level
        assert decision.recovery_level == CheckpointLevel.PFS
