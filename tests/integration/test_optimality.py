"""Global-optimality evidence: Algorithm 1 vs brute-force grid search.

The paper cannot prove global optimality (the self-consistent objective is
non-convex); Algorithm 1 is argued to find the right point via the
frozen-mu convexification.  These tests corroborate that empirically: on
small configurations, a dense grid search over (x_1..x_L, N) of the exact
self-consistent objective never beats Algorithm 1's solution by more than
grid resolution.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.algorithm1 import optimize
from repro.core.notation import ModelParameters
from repro.core.wallclock import self_consistent_wallclock
from repro.costs.model import LevelCostModel
from repro.failures.rates import FailureRates
from repro.speedup.quadratic import QuadraticSpeedup


def _grid_best(params: ModelParameters, x_grids, n_grid) -> float:
    best = np.inf
    for x in itertools.product(*x_grids):
        for n in n_grid:
            try:
                value, _ = self_consistent_wallclock(
                    params, np.asarray(x, dtype=float), float(n)
                )
            except ValueError:
                continue
            best = min(best, value)
    return best


def test_two_level_grid_search(small_params):
    """Dense 2-level grid around plausible ranges vs Algorithm 1."""
    from dataclasses import replace

    params = replace(
        small_params,
        costs=LevelCostModel.from_constants([1.0, 12.0]),
        rates=FailureRates((24.0, 6.0), baseline_scale=2_000.0),
    )
    solution = optimize(params).solution
    x_grids = [np.geomspace(4, 4_000, 28), np.geomspace(2, 1_000, 28)]
    n_grid = np.linspace(100.0, 2_000.0, 40)
    grid_best = _grid_best(params, x_grids, n_grid)
    # the solver must match or beat the best grid point (up to resolution)
    assert solution.expected_wallclock <= grid_best * 1.005


@settings(max_examples=8, deadline=None)
@given(
    c2=st.floats(min_value=4.0, max_value=40.0),
    r1=st.floats(min_value=5.0, max_value=40.0),
    r2=st.floats(min_value=1.0, max_value=10.0),
    te=st.floats(min_value=50.0, max_value=500.0),
)
def test_random_two_level_configs(c2, r1, r2, te):
    """Random small models: Algorithm 1 is never beaten by a coarse grid."""
    params = ModelParameters.from_core_days(
        te,
        speedup=QuadraticSpeedup(kappa=0.5, ideal_scale=2_000.0),
        costs=LevelCostModel.from_constants([1.0, c2]),
        rates=FailureRates((r1, r2), baseline_scale=2_000.0),
        allocation_period=20.0,
    )
    solution = optimize(params).solution
    x_grids = [np.geomspace(2, 3_000, 18), np.geomspace(1.5, 800, 18)]
    n_grid = np.linspace(150.0, 2_000.0, 24)
    grid_best = _grid_best(params, x_grids, n_grid)
    assert solution.expected_wallclock <= grid_best * 1.01


def test_four_level_coarse_grid(small_params):
    """Coarse 4-level sanity grid (5^4 x 10 points)."""
    solution = optimize(small_params).solution
    x_star = np.asarray(solution.intervals)
    x_grids = [np.geomspace(x / 4.0, x * 4.0, 5) for x in x_star]
    n_grid = np.linspace(300.0, 2_000.0, 10)
    grid_best = _grid_best(small_params, x_grids, n_grid)
    assert solution.expected_wallclock <= grid_best * 1.005
