"""Functional integration: the Heat app checkpointed through the FTI API.

This exercises the full substrate stack the paper's real-cluster
experiments used: a real numerical application, protected by the
multilevel checkpoint toolkit, surviving injected hardware failures with
bit-exact state recovery.
"""

import numpy as np
import pytest

from repro.apps.heat import HeatDistribution2D
from repro.apps.simmpi import SimComm
from repro.cluster.topology import ClusterTopology
from repro.fti.api import FTIContext
from repro.fti.levels import CheckpointLevel


@pytest.fixture
def setup():
    topo = ClusterTopology(num_nodes=8, rs_group_size=4, rs_parity=2)
    ctx = FTIContext(topo, ranks_per_node=1)
    comm = SimComm(n_ranks=8)
    solver = HeatDistribution2D(grid_size=32, comm=comm)
    # each rank protects its row-block of the shared grid (the block rows
    # alias the same array, so protecting rank 0's view suffices for the
    # whole grid; per-rank protection exercises the node mapping)
    rows = np.array_split(np.arange(32), 8)
    for rank in range(8):
        ctx.protect(rank, "block", solver.grid[rows[rank][0] + 1 : rows[rank][-1] + 2])
    return topo, ctx, solver


def test_heat_state_survives_node_crash(setup):
    topo, ctx, solver = setup
    for _ in range(20):
        solver.jacobi_sweep()
    checkpointed = solver.grid.copy()
    ctx.checkpoint(CheckpointLevel.PARTNER)
    # more progress, then a crash erases it
    for _ in range(20):
        solver.jacobi_sweep()
    assert not np.allclose(solver.grid, checkpointed)
    ctx.fail_nodes([3])
    decision = ctx.recover()
    assert decision.recovery_level == CheckpointLevel.PARTNER
    assert np.allclose(solver.grid[1:-1], checkpointed[1:-1])


def test_recovered_run_converges_to_same_answer(setup):
    """Crash-recover-continue reaches the same solution as a clean run."""
    topo, ctx, solver = setup
    reference = HeatDistribution2D(grid_size=32, comm=SimComm(n_ranks=1))
    for _ in range(10):
        solver.jacobi_sweep()
        reference.jacobi_sweep()
    ctx.checkpoint(CheckpointLevel.RS_ENCODING)
    # diverge: extra sweeps that will be rolled back
    for _ in range(5):
        solver.jacobi_sweep()
    ctx.fail_nodes([1, 2])  # adjacent, needs RS
    decision = ctx.recover()
    assert decision.recovery_level == CheckpointLevel.RS_ENCODING
    # re-execute the lost sweeps and continue in lockstep with reference
    for _ in range(40):
        solver.jacobi_sweep()
        reference.jacobi_sweep()
    assert np.allclose(solver.grid, reference.grid)
