"""Model-vs-simulator consistency checks.

The analytic E(T_w) (Formula 21, self-consistent mu) is a first-order
model: it ignores checkpoint retries after mid-checkpoint failures and
failure-over-recovery chains.  These tests pin down how closely the
simulator tracks it, per regime:

* with rare failures the model is near-exact;
* with frequent failures the simulator runs *longer* than the model
  (retries only add time) but stays within a bounded factor.
"""

import numpy as np
import pytest

from repro.core.solutions import ml_opt_scale
from repro.core.wallclock import time_portions
from repro.sim.runner import simulate_solution


def test_rare_failure_regime_near_exact(small_params):
    from dataclasses import replace
    from repro.failures.rates import FailureRates

    mild = replace(
        small_params,
        rates=FailureRates((2.0, 1.0, 0.5, 0.2), baseline_scale=2_000.0),
    )
    sol = ml_opt_scale(mild)
    ens = simulate_solution(mild, sol, n_runs=40, seed=0)
    assert ens.mean_wallclock == pytest.approx(
        sol.expected_wallclock, rel=0.06
    )


def test_model_is_lower_bound_under_frequent_failures(paper_params):
    """Checkpoint retries make the simulated mean exceed the prediction."""
    sol = ml_opt_scale(paper_params)
    ens = simulate_solution(paper_params, sol, n_runs=10, seed=1)
    assert ens.mean_wallclock >= sol.expected_wallclock * 0.95
    assert ens.mean_wallclock <= sol.expected_wallclock * 1.6


def test_portion_structure_matches(small_params):
    """Productive portions agree exactly; overhead portions correlate."""
    sol = ml_opt_scale(small_params)
    analytic = time_portions(small_params, sol.intervals, sol.scale)
    ens = simulate_solution(small_params, sol, n_runs=40, seed=2)
    simulated = ens.mean_portions()
    n = sol.scale_rounded()
    assert simulated["productive"] == pytest.approx(
        small_params.productive_time(n), rel=1e-6
    )
    # overheads within a 2x band of the first-order prediction
    for key in ("checkpoint", "restart"):
        assert simulated[key] == pytest.approx(analytic[key], rel=1.0), key


def test_observed_failure_rates_match_configuration(small_params):
    sol = ml_opt_scale(small_params)
    ens = simulate_solution(small_params, sol, n_runs=50, seed=3)
    n = sol.scale_rounded()
    lam = small_params.rates.rates_per_second(n)
    observed = np.mean(
        [r.failures_per_level for r in ens.runs], axis=0
    ) / np.mean([r.wallclock for r in ens.runs])
    assert np.allclose(observed, lam, rtol=0.25)
