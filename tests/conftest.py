"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.notation import ModelParameters
from repro.costs.model import CostModel, LevelCostModel
from repro.costs.scaling import CONSTANT, LINEAR
from repro.failures.rates import FailureRates
from repro.speedup.quadratic import QuadraticSpeedup


@pytest.fixture
def rng():
    """Deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_params() -> ModelParameters:
    """A small, fast 4-level configuration (kilocore scale, short workload).

    Chosen so every solver converges in milliseconds and the simulator runs
    in well under a second, while exercising all four levels with distinct
    costs and rates.
    """
    costs = LevelCostModel.from_constants([1.0, 2.5, 4.0, 12.0])
    return ModelParameters.from_core_days(
        200.0,  # core-days
        speedup=QuadraticSpeedup(kappa=0.5, ideal_scale=2_000.0),
        costs=costs,
        rates=FailureRates((24.0, 12.0, 6.0, 3.0), baseline_scale=2_000.0),
        allocation_period=30.0,
    )


@pytest.fixture
def paper_params() -> ModelParameters:
    """The paper's Fig. 5 configuration (case 8-4-2-1)."""
    from repro.experiments.config import make_params

    return make_params(3e6, "8-4-2-1")


@pytest.fixture
def single_level_params() -> ModelParameters:
    """A single-level (PFS-only) configuration for the SL solvers."""
    cost = CostModel(constant=10.0, coefficient=0.0, baseline=CONSTANT)
    return ModelParameters.from_core_days(
        500.0,
        speedup=QuadraticSpeedup(kappa=0.5, ideal_scale=10_000.0),
        costs=LevelCostModel(checkpoint=(cost,), recovery=(cost,)),
        rates=FailureRates((12.0,), baseline_scale=10_000.0),
        allocation_period=20.0,
    )
