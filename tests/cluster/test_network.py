"""Tests for the interconnect model."""

import pytest

from repro.cluster.network import NetworkModel


@pytest.fixture
def net():
    return NetworkModel(latency=1e-6, bandwidth=2e9)


def test_p2p_time(net):
    # 2 GB at 2 GB/s is one second plus latency
    assert net.p2p_time(2e9) == pytest.approx(1.0, rel=1e-5)
    assert net.p2p_time(0.0) == pytest.approx(1e-6)


def test_broadcast_log_stages(net):
    t8 = net.broadcast_time(1e6, 8)
    t64 = net.broadcast_time(1e6, 64)
    assert t64 == pytest.approx(2.0 * t8)  # log2(64)=6 vs log2(8)=3
    assert net.broadcast_time(1e6, 1) == 0.0


def test_allreduce_log_stages(net):
    assert net.allreduce_time(8, 1024) == pytest.approx(10 * net.p2p_time(8))
    assert net.allreduce_time(8, 1) == 0.0


def test_alltoall_bisection_pressure(net):
    t = net.alltoall_time(1e6, 16)
    # 16 MB over half the link bandwidth
    assert t == pytest.approx(16e6 / 1e9, rel=0.01)


def test_single_rank_alltoall_free(net):
    assert net.alltoall_time(1e6, 1) == 0.0


def test_validation():
    with pytest.raises(ValueError):
        NetworkModel(latency=-1.0)
    with pytest.raises(ValueError):
        NetworkModel(bandwidth=0.0)
    with pytest.raises(ValueError):
        NetworkModel(bisection_factor=1.5)
    with pytest.raises(ValueError):
        NetworkModel().p2p_time(-5.0)
    with pytest.raises(ValueError):
        NetworkModel().broadcast_time(1.0, 0)
