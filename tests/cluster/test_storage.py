"""Tests for the storage hierarchy."""

import pytest

from repro.cluster.storage import LocalStoreModel, PFSModel, StorageHierarchy


class TestLocalStore:
    def test_write_time_scales_with_data(self):
        local = LocalStoreModel(bandwidth=500e6, base_latency=0.0)
        assert local.write_time(50e6, 8) == pytest.approx(0.8)
        assert local.write_time(50e6, 4) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            LocalStoreModel(bandwidth=0.0)
        with pytest.raises(ValueError):
            LocalStoreModel().write_time(-1.0, 8)
        with pytest.raises(ValueError):
            LocalStoreModel().write_time(1.0, 0)


class TestPFS:
    def test_contended_write_linear_in_writers(self):
        pfs = PFSModel(
            aggregate_bandwidth=2.4e9, metadata_cost=0.0, base_latency=5.5
        )
        t1 = pfs.write_time(50e6, 1000)
        t2 = pfs.write_time(50e6, 2000)
        # doubling writers doubles the bandwidth-bound part
        assert (t2 - 5.5) == pytest.approx(2.0 * (t1 - 5.5))

    def test_uncontended_write_constant(self):
        pfs = PFSModel(contention=False, metadata_cost=0.0, base_latency=1.0,
                       per_client_bandwidth=50e6)
        assert pfs.write_time(50e6, 10) == pfs.write_time(50e6, 100_000)

    def test_metadata_cost_charged_per_file(self):
        pfs = PFSModel(metadata_cost=1e-3, base_latency=0.0)
        base = pfs.write_time(0.0, 1)
        assert pfs.write_time(0.0, 1001) - base == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PFSModel(aggregate_bandwidth=-1.0)
        with pytest.raises(ValueError):
            PFSModel().write_time(1.0, 0)


class TestHierarchy:
    def test_level_ordering_holds(self):
        """C_1 <= C_2 <= C_3 <= C_4 at realistic scales (paper Section II)."""
        h = StorageHierarchy()
        times = [
            h.checkpoint_time(level, 50e6, 1024, 8) for level in (1, 2, 3, 4)
        ]
        assert times == sorted(times)

    def test_pfs_grows_with_scale_lower_levels_do_not(self):
        h = StorageHierarchy()
        for level in (1, 2, 3):
            assert h.checkpoint_time(level, 50e6, 128, 8) == pytest.approx(
                h.checkpoint_time(level, 50e6, 1024, 8)
            )
        assert h.checkpoint_time(4, 50e6, 1024, 8) > h.checkpoint_time(
            4, 50e6, 128, 8
        )

    def test_recovery_mirrors_checkpoint(self):
        h = StorageHierarchy()
        assert h.recovery_time(3, 50e6, 256, 8) == h.checkpoint_time(
            3, 50e6, 256, 8
        )

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            StorageHierarchy().checkpoint_time(5, 1.0, 8, 8)

    def test_invalid_overhead_config(self):
        with pytest.raises(ValueError):
            StorageHierarchy(software_overhead=(1.0, 1.0))
        with pytest.raises(ValueError):
            StorageHierarchy(rs_encode_bandwidth=0.0)
