"""Tests for the node model."""

import pytest

from repro.cluster.node import Node, NodeState


def test_defaults_healthy():
    node = Node(node_id=0)
    assert node.is_healthy
    assert node.state == NodeState.HEALTHY


def test_fail_and_repair():
    node = Node(node_id=1)
    node.fail()
    assert not node.is_healthy
    node.fail()  # idempotent
    assert node.state == NodeState.FAILED
    node.repair()
    assert node.is_healthy


def test_spare_not_healthy():
    node = Node(node_id=2, state=NodeState.SPARE)
    assert not node.is_healthy


def test_validation():
    with pytest.raises(ValueError):
        Node(node_id=-1)
    with pytest.raises(ValueError):
        Node(node_id=0, cores=0)
    with pytest.raises(ValueError):
        Node(node_id=0, local_bandwidth=0.0)
