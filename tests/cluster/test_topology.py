"""Tests for the cluster topology and failure-domain logic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.topology import ClusterTopology


@pytest.fixture
def topo():
    return ClusterTopology(
        num_nodes=32, cores_per_node=8, nodes_per_rack=8, rs_group_size=8, rs_parity=2
    )


class TestStructure:
    def test_total_cores(self, topo):
        assert topo.total_cores == 256

    def test_ring_partner(self, topo):
        assert topo.partner_of(0) == 1
        assert topo.partner_of(31) == 0  # wraps

    def test_rs_groups(self, topo):
        assert topo.rs_group_of(0) == 0
        assert topo.rs_group_of(15) == 1
        assert topo.rs_group_members(1) == list(range(8, 16))

    def test_short_last_group(self):
        topo = ClusterTopology(num_nodes=10, rs_group_size=8)
        assert topo.rs_group_members(1) == [8, 9]

    def test_racks(self, topo):
        assert topo.rack_of(0) == 0
        assert topo.rack_of(9) == 1
        assert topo.rack_members(1) == list(range(8, 16))

    def test_spares_marked(self):
        topo = ClusterTopology(num_nodes=4, spare_nodes=2)
        assert len(topo.nodes) == 6
        assert not topo.nodes[5].is_healthy


class TestPartnerSurvival:
    def test_single_failure_survives(self, topo):
        assert topo.partner_survives([5])

    def test_nonadjacent_failures_survive(self, topo):
        assert topo.partner_survives([3, 10, 20])

    def test_adjacent_failures_fatal(self, topo):
        # node 7's partner is node 8: both gone -> unrecoverable at level 2
        assert not topo.partner_survives([7, 8])

    def test_ring_wraparound_adjacency(self, topo):
        assert not topo.partner_survives([31, 0])

    def test_empty_set_survives(self, topo):
        assert topo.partner_survives([])


class TestRSSurvival:
    def test_within_parity_survives(self, topo):
        assert topo.rs_survives([0, 1])  # 2 losses in group 0, parity 2

    def test_beyond_parity_fatal(self, topo):
        assert not topo.rs_survives([0, 1, 2])

    def test_losses_spread_across_groups_survive(self, topo):
        # 2 per group is fine even with 6 total failures
        assert topo.rs_survives([0, 1, 8, 9, 16, 17])


class TestRecoveryLevel:
    def test_no_hardware_loss_level_1(self, topo):
        assert topo.lowest_recovery_level([]) == 1

    def test_nonadjacent_level_2(self, topo):
        assert topo.lowest_recovery_level([4, 12]) == 2

    def test_adjacent_within_parity_level_3(self, topo):
        assert topo.lowest_recovery_level([7, 8]) == 3

    def test_heavy_rack_loss_level_4(self, topo):
        # 3+ failures in one RS group exceeds parity -> PFS
        assert topo.lowest_recovery_level([8, 9, 10]) == 4

    def test_invalid_node_rejected(self, topo):
        with pytest.raises(ValueError):
            topo.lowest_recovery_level([99])


class TestValidation:
    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            ClusterTopology(num_nodes=0)
        with pytest.raises(ValueError):
            ClusterTopology(num_nodes=4, rs_group_size=1)
        with pytest.raises(ValueError):
            ClusterTopology(num_nodes=4, rs_group_size=4, rs_parity=4)


@settings(max_examples=30, deadline=None)
@given(failed=st.sets(st.integers(min_value=0, max_value=31), max_size=6))
def test_recovery_level_consistency(failed):
    """The chosen level's own predicate always holds, and no cheaper
    hardware-tolerant level would also hold."""
    topo = ClusterTopology(num_nodes=32, rs_group_size=8, rs_parity=2)
    level = topo.lowest_recovery_level(failed)
    if level == 1:
        assert not failed
    if level == 2:
        assert topo.partner_survives(failed)
    if level == 3:
        assert topo.rs_survives(failed) and not topo.partner_survives(failed)
    if level == 4:
        assert not topo.rs_survives(failed)
