"""Tests for the resource allocator."""

import pytest

from repro.cluster.allocation import ResourceAllocator
from repro.cluster.node import NodeState
from repro.cluster.topology import ClusterTopology


def test_spares_consumed_first():
    topo = ClusterTopology(num_nodes=4, spare_nodes=2)
    alloc = ResourceAllocator(topo, allocation_period=60.0)
    event = alloc.allocate_replacements(100.0, [1, 2])
    assert event.duration == 60.0
    assert event.failed_nodes == (1, 2)
    # both spares activated
    assert set(event.replacement_nodes) == {4, 5}
    assert topo.nodes[4].state == NodeState.HEALTHY
    assert topo.nodes[5].state == NodeState.HEALTHY


def test_repair_in_place_without_spares():
    topo = ClusterTopology(num_nodes=4)
    alloc = ResourceAllocator(topo)
    event = alloc.allocate_replacements(0.0, [3])
    assert event.replacement_nodes == (3,)
    assert topo.nodes[3].is_healthy


def test_partial_spares():
    topo = ClusterTopology(num_nodes=4, spare_nodes=1)
    alloc = ResourceAllocator(topo)
    event = alloc.allocate_replacements(0.0, [0, 1])
    assert 4 in event.replacement_nodes  # the one spare
    # the other failed node repaired in place
    assert topo.nodes[0].is_healthy or topo.nodes[1].is_healthy


def test_total_allocation_time_accumulates():
    topo = ClusterTopology(num_nodes=4)
    alloc = ResourceAllocator(topo, allocation_period=45.0)
    alloc.allocate_replacements(0.0, [0])
    alloc.allocate_replacements(100.0, [1])
    assert alloc.total_allocation_time == 90.0
    assert len(alloc.history) == 2


def test_duplicate_failed_nodes_deduplicated():
    topo = ClusterTopology(num_nodes=4)
    alloc = ResourceAllocator(topo)
    event = alloc.allocate_replacements(0.0, [2, 2])
    assert event.failed_nodes == (2,)


def test_negative_period_rejected():
    topo = ClusterTopology(num_nodes=2)
    with pytest.raises(ValueError):
        ResourceAllocator(topo, allocation_period=-1.0)
