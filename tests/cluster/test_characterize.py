"""Tests for the Table II characterization harness."""

import numpy as np
import pytest

from repro.cluster.characterize import (
    characterize_checkpoint_costs,
    fusion_like_cluster,
)
from repro.costs.fti_fusion import (
    FTI_FUSION_CHECKPOINT_TABLE,
    FTI_FUSION_PAPER_COEFFS,
)


def test_table_shape():
    result = characterize_checkpoint_costs()
    assert result.table.shape == (5, 4)
    assert result.scales.tolist() == [128, 256, 384, 512, 1024]


def test_fusion_calibration_matches_paper_coefficients():
    """The fitted (eps_i, alpha_i) from the simulated cluster match the
    paper's quoted Table II coefficients."""
    result = characterize_checkpoint_costs()
    for level, (paper_eps, paper_alpha) in enumerate(FTI_FUSION_PAPER_COEFFS):
        fitted = result.cost_model.checkpoint[level]
        if paper_alpha == 0.0:
            assert fitted.is_constant()
            assert fitted.constant == pytest.approx(paper_eps, rel=0.15)
        else:
            assert fitted.coefficient == pytest.approx(paper_alpha, rel=0.05)
            assert fitted.constant == pytest.approx(paper_eps, rel=0.15)


def test_fusion_table_close_to_paper_row_means():
    """Per-level mean costs within ~25% of the paper's (noisy) measurements."""
    result = characterize_checkpoint_costs()
    ours = result.table.mean(axis=0)
    paper = FTI_FUSION_CHECKPOINT_TABLE.mean(axis=0)
    assert np.all(np.abs(ours - paper) / paper < 0.25)


def test_level_ordering_in_characterization():
    result = characterize_checkpoint_costs()
    assert np.all(np.diff(result.table, axis=1) > 0)


def test_noise_and_repeats():
    noisy = characterize_checkpoint_costs(noise=0.1, repeats=3, seed=0)
    clean = characterize_checkpoint_costs()
    assert not np.array_equal(noisy.table, clean.table)
    # averaged noise keeps values in the right ballpark
    assert np.allclose(noisy.table, clean.table, rtol=0.35)


def test_noise_reproducible_by_seed():
    a = characterize_checkpoint_costs(noise=0.1, seed=5)
    b = characterize_checkpoint_costs(noise=0.1, seed=5)
    assert np.array_equal(a.table, b.table)


def test_validation():
    with pytest.raises(ValueError):
        characterize_checkpoint_costs(noise=1.5)
    with pytest.raises(ValueError):
        characterize_checkpoint_costs(repeats=0)
    with pytest.raises(ValueError):
        characterize_checkpoint_costs(scales=(4,))  # below one node


def test_fusion_like_cluster_pfs_slope():
    h = fusion_like_cluster()
    t_lo = h.checkpoint_time(4, 50e6, 1000, 8)
    t_hi = h.checkpoint_time(4, 50e6, 2000, 8)
    assert (t_hi - t_lo) / 1000 == pytest.approx(0.0212, rel=1e-6)
