"""Tests for the functional end-to-end simulation."""

import numpy as np
import pytest

from repro.apps.heat import HeatDistribution2D
from repro.apps.simmpi import SimComm
from repro.cluster.storage import StorageHierarchy
from repro.cluster.topology import ClusterTopology
from repro.failures.rates import FailureRates
from repro.funcsim.config import FunctionalConfig
from repro.funcsim.run import run_functional


def _config(**overrides):
    # Rates are per *day* at 16 cores; the toy run lasts ~20 simulated
    # seconds, so several failures per run need absurd-looking daily rates.
    defaults = dict(
        topology=ClusterTopology(num_nodes=16, rs_group_size=8, rs_parity=2),
        storage=StorageHierarchy(),
        rates=FailureRates((8e3, 4e3, 2e3, 1e3), baseline_scale=16.0),
        grid_size=48,
        total_sweeps=120,
        checkpoint_interval_sweeps=(10, 20, 40, 60),
        bytes_per_process=5e6,
        allocation_period=1.0,
    )
    defaults.update(overrides)
    return FunctionalConfig(**defaults)


def _reference_grid(grid_size: int, sweeps: int) -> np.ndarray:
    reference = HeatDistribution2D(grid_size=grid_size, comm=SimComm(n_ranks=1))
    for _ in range(sweeps):
        reference.jacobi_sweep()
    return reference.grid


class TestFailureFree:
    def test_completes_with_exact_physics(self):
        config = _config(rates=FailureRates((0, 0, 0, 0), baseline_scale=16.0))
        result = run_functional(config, seed=0)
        assert result.completed
        assert result.failures_per_level == (0, 0, 0, 0)
        assert np.allclose(
            result.grid, _reference_grid(config.grid_size, config.total_sweeps)
        )

    def test_checkpoint_counts_match_cadence(self):
        config = _config(rates=FailureRates((0, 0, 0, 0), baseline_scale=16.0))
        result = run_functional(config, seed=0)
        # No checkpoint at completion (the model's x_i - 1 convention):
        # marks at interior multiples only -> 11 / 5 / 2 / 1.
        assert result.checkpoints_per_level == (11, 5, 2, 1)

    def test_portions_conservation(self):
        config = _config(rates=FailureRates((0, 0, 0, 0), baseline_scale=16.0))
        result = run_functional(config, seed=0)
        assert sum(result.portions.values()) == pytest.approx(result.wallclock)
        assert result.portions["rollback"] == 0.0


class TestWithFailures:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_final_physics_exact_despite_failures(self, seed):
        """The headline property: whatever failures strike, the completed
        run's grid is bit-identical to an uninterrupted execution."""
        config = _config()
        result = run_functional(config, seed=seed)
        assert result.completed
        assert np.array_equal(
            result.grid, _reference_grid(config.grid_size, config.total_sweeps)
        )

    def test_failures_were_actually_injected(self):
        result = run_functional(_config(), seed=6)
        assert sum(result.failures_per_level) > 3

    def test_portions_conservation_with_failures(self):
        result = run_functional(_config(), seed=5)
        assert sum(result.portions.values()) == pytest.approx(result.wallclock)

    def test_rollback_work_present_after_hardware_failures(self):
        result = run_functional(_config(), seed=6)
        if sum(result.failures_per_level[1:]) > 0:
            # hardware failures force re-execution (or a scratch restart)
            assert (
                result.portions["rollback"] > 0 or result.scratch_restarts > 0
            )

    def test_reproducible_by_seed(self):
        a = run_functional(_config(), seed=9)
        b = run_functional(_config(), seed=9)
        assert a.wallclock == b.wallclock
        assert a.failures_per_level == b.failures_per_level


class TestScratchRestart:
    def test_underprotected_run_restarts_from_scratch(self):
        """Only level-1 checkpoints + hardware failures: the app must lose
        everything and restart, and still finish with exact physics."""
        config = _config(
            checkpoint_interval_sweeps=(10, 0, 0, 0),
            rates=FailureRates((0.0, 4e4, 0.0, 0.0), baseline_scale=16.0),
            total_sweeps=60,
            allocation_period=0.5,
        )
        result = run_functional(config, seed=7)
        assert result.completed
        assert result.scratch_restarts >= 1
        assert np.array_equal(
            result.grid, _reference_grid(config.grid_size, config.total_sweeps)
        )


class TestCensoring:
    def test_impossible_run_censored(self):
        config = _config(
            rates=FailureRates((0, 0, 0, 2e6), baseline_scale=16.0),
            checkpoint_interval_sweeps=(0, 0, 0, 30),
            allocation_period=0.5,
            max_wallclock=1_000.0,
        )
        result = run_functional(config, seed=8)
        assert not result.completed


class TestValidation:
    def test_bad_configs_rejected(self):
        with pytest.raises(ValueError):
            _config(total_sweeps=0)
        with pytest.raises(ValueError):
            _config(checkpoint_interval_sweeps=(1, 2, 3))
        with pytest.raises(ValueError):
            _config(grid_size=8)  # fewer rows than ranks
        with pytest.raises(ValueError):
            _config(rates=FailureRates((1.0,), baseline_scale=16.0))
