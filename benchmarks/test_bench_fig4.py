"""Bench: Figure 4 — simulator validation (< 4 % vs the reference engine)."""

from repro.experiments.fig4 import run_fig4
from repro.util.tablefmt import format_table


def test_bench_fig4(benchmark, record_result):
    result = benchmark.pedantic(run_fig4, rounds=1, iterations=1)

    rows = [
        [
            "-".join(str(i) for i in p.intervals),
            f"{p.wallclock_event:.1f}",
            f"{p.wallclock_tick:.1f}",
            f"{100 * p.relative_difference:.2f}%",
        ]
        for p in result.points
    ]
    table = format_table(
        ["intervals x1-x2-x3-x4", "event engine (s)", "tick engine (s)", "diff"],
        rows,
        title=(
            "Figure 4 - simulator validation, 1,024-core Fusion config "
            f"(max diff {100 * result.max_relative_difference:.2f}%, "
            f"paper: < 4%)"
        ),
    )
    record_result("fig4", table)

    assert result.max_relative_difference < 0.04
