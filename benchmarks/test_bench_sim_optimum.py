"""Bench: does the analytic optimum hold up *under simulation*?

The Fig. 3 confirmation, taken one step further: around the ML(opt-scale)
solution, sweep each decision variable (the PFS interval count and the
scale) and simulate every candidate.  The simulated-best configuration
should sit near the analytic optimum — and any gap is the signature of the
first-order model's retry blind spot, which the retry-aware objective
(`repro.core.corrections`) closes.
"""

import numpy as np

from benchmarks.conftest import bench_runs
from repro.core.algorithm1 import optimize
from repro.core.corrections import corrected_parameters
from repro.experiments.config import make_params
from repro.sim.runner import simulate_solution
from repro.util.tablefmt import format_table

from dataclasses import replace as dc_replace


def _simulate_config(params, solution, intervals, scale, n_runs, seed):
    candidate = dc_replace(
        solution,
        intervals=tuple(intervals),
        scale=float(scale),
        mu=tuple(
            float(m) for m in params.rates.expected_failures(scale, 86_400.0)
        ),
    )
    ens = simulate_solution(
        params, candidate, n_runs=n_runs, seed=seed, max_wallclock=86_400 * 400.0
    )
    return ens.mean_wallclock


def test_bench_simulated_optimum(benchmark, record_result):
    params = make_params(3e6, "8-4-2-1")
    n_runs = max(6, bench_runs() // 4)

    def run():
        plain = optimize(params).solution
        corrected = optimize(corrected_parameters(params)).solution
        rows = []
        base = np.asarray(plain.intervals, dtype=float)
        # sweep the PFS interval count around the analytic optimum
        for factor in (0.25, 0.5, 1.0, 2.0, 4.0):
            x = base.copy()
            x[3] = max(1.0, x[3] * factor)
            wallclock = _simulate_config(
                params, plain, x, plain.scale, n_runs, seed=int(97 * factor)
            )
            rows.append(
                ["x4 sweep", f"{factor}x", f"{x[3]:.0f}", f"{plain.scale:.0f}",
                 f"{wallclock / 86_400:.2f}"]
            )
        # sweep the scale around the analytic optimum
        for factor in (0.5, 0.75, 1.0, 1.25):
            n = min(factor * plain.scale, params.scale_upper_bound)
            wallclock = _simulate_config(
                params, plain, base, n, n_runs, seed=int(53 * factor)
            )
            rows.append(
                ["N sweep", f"{factor}x", f"{base[3]:.0f}", f"{n:.0f}",
                 f"{wallclock / 86_400:.2f}"]
            )
        # the retry-aware optimizer's pick
        corr_wallclock = simulate_solution(
            params, corrected, n_runs=n_runs, seed=5
        ).mean_wallclock
        rows.append(
            [
                "retry-aware optimum",
                "-",
                f"{corrected.intervals[3]:.0f}",
                f"{corrected.scale:.0f}",
                f"{corr_wallclock / 86_400:.2f}",
            ]
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["sweep", "factor", "x4", "N", "simulated days"],
        rows,
        title=(
            "Simulated objective around the analytic optimum "
            "(ML(opt-scale), case 8-4-2-1)"
        ),
    )
    record_result("sim_optimum", table)

    # the analytic point (factor 1.0 rows) beats its sweep neighbours or
    # sits within a modest band of the simulated best
    x4_values = {
        row[1]: float(row[4]) for row in rows if row[0] == "x4 sweep"
    }
    assert x4_values["1.0x"] <= min(x4_values.values()) * 1.15
    n_values = {row[1]: float(row[4]) for row in rows if row[0] == "N sweep"}
    assert n_values["1.0x"] <= min(n_values.values()) * 1.15
