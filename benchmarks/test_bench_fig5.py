"""Bench: Figure 5 + Table III — time portions and optimized scales.

Regenerates the paper's main comparison at T_e = 3 million core-days,
N^(*) = 10^6 cores, six failure cases: per-strategy wall-clock decomposition
(the Fig. 5 stacked bars) and the Table III optimized scales.

Shape assertions (paper-vs-measured values live in EXPERIMENTS.md):

* ML(opt-scale) has the shortest wall-clock in every case;
* wall-clock falls as failure rates fall;
* optimized scales shrink with rising failure rates (Table III ordering)
  and stay within 20-90 % of the million cores.
"""

from benchmarks.conftest import bench_jobs, bench_runs
from repro.analysis.tables import portions_table
from repro.experiments.fig5 import run_fig5
from repro.util.tablefmt import format_table


def test_bench_fig5_and_table3(benchmark, record_result):
    result = benchmark.pedantic(
        run_fig5,
        kwargs={"n_runs": bench_runs(), "jobs": bench_jobs()},
        rounds=1,
        iterations=1,
    )

    sections = []
    for case in result.cases:
        sections.append(
            portions_table(
                case.ensembles,
                title=f"Figure 5 - case {case.case} (mean portions, days)",
            )
        )

    scales = result.optimized_scales()
    rows = []
    for strategy in ("ml-opt-scale", "sl-opt-scale"):
        rows.append(
            [strategy]
            + [f"{scales[strategy][c.case] / 1000:.0f}k" for c in result.cases]
        )
    sections.append(
        format_table(
            ["solution"] + [c.case for c in result.cases],
            rows,
            title="Table III - optimized execution scales",
        )
    )
    record_result("fig5_table3", "\n\n".join(sections))

    # Shape assertions.
    for case in result.cases:
        best = case.ensembles["ml-opt-scale"].mean_wallclock
        for name, ens in case.ensembles.items():
            if name != "ml-opt-scale":
                assert best < ens.mean_wallclock, (case.case, name)
    by_case = {
        c.case: c.ensembles["ml-opt-scale"].mean_wallclock for c in result.cases
    }
    assert by_case["4-2-1-0.5"] < by_case["8-4-2-1"] < by_case["16-8-4-2"]
    assert by_case["4-3-2-1"] < by_case["8-6-4-2"] < by_case["16-12-8-4"]
    ml_scales = scales["ml-opt-scale"]
    assert ml_scales["16-12-8-4"] < ml_scales["8-6-4-2"] < ml_scales["4-3-2-1"]
    for value in ml_scales.values():
        assert 2e5 <= value <= 9e5
