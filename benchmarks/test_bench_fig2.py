"""Bench: Figure 2 — speedup curves and quadratic fits."""

from repro.experiments.fig2 import kappa_recovery_error, run_fig2
from repro.util.tablefmt import format_table


def test_bench_fig2(benchmark, record_result):
    result = benchmark.pedantic(run_fig2, rounds=1, iterations=1)

    rows = [
        [
            "Heat (paper-calibrated points)",
            f"{result.heat_paper_fit.kappa:.3f}",
            f"{result.heat_paper_fit.ideal_scale:.0f}",
            f"{result.heat_paper_fit.residual_rms:.2f}",
        ],
        [
            "Heat (measured from sim-MPI app)",
            f"{result.heat_measured_fit.kappa:.4f}",
            f"{result.heat_measured_fit.ideal_scale:.0f}",
            f"{result.heat_measured_fit.residual_rms:.2f}",
        ],
        [
            "Nek5000 eddy_uv (initial range)",
            f"{result.eddy_fit.kappa:.3f}",
            f"{result.eddy_fit.ideal_scale:.0f}",
            f"{result.eddy_fit.residual_rms:.2f}",
        ],
    ]
    table = format_table(
        ["curve", "kappa", "fitted N^(*)", "residual RMS"],
        rows,
        title=(
            "Figure 2 - quadratic speedup fits "
            f"(paper: Heat kappa=0.46; eddy peak ~100 cores; "
            f"measured eddy peak={result.eddy_peak_scale:.0f})"
        ),
    )
    record_result("fig2", table)

    assert kappa_recovery_error(result) < 0.1
    assert 50.0 <= result.eddy_peak_scale <= 200.0
