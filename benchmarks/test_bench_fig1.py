"""Bench: Figure 1 — speedup-vs-overhead tradeoff series."""

from repro.experiments.fig1 import run_fig1
from repro.util.tablefmt import format_table


def test_bench_fig1(benchmark, record_result):
    result = benchmark.pedantic(run_fig1, rounds=1, iterations=1)

    rows = []
    step = max(1, len(result.scales) // 12)
    for i in range(0, len(result.scales), step):
        rows.append(
            [
                f"{result.scales[i] / 1000:.0f}k",
                f"{result.performance_no_checkpoint[i]:.3e}",
                f"{result.performance_with_checkpoint[i]:.3e}",
            ]
        )
    table = format_table(
        ["N (cores)", "perf (no ckpt)", "perf (with ckpt)"],
        rows,
        title=(
            "Figure 1 - tradeoff between execution speedup and checkpoint "
            f"overhead\noptimal N: no-ckpt={result.optimal_scale_no_checkpoint:.0f}, "
            f"with-ckpt={result.optimal_scale_with_checkpoint:.0f}"
        ),
    )
    record_result("fig1", table)

    # Paper shape: the checkpointed optimum sits strictly left of N^(*).
    assert (
        result.optimal_scale_with_checkpoint
        < result.optimal_scale_no_checkpoint
    )
