"""Open-loop load generator for :mod:`repro.service`.

Closed-loop drivers (issue, wait, issue again) hide queueing delay:
when the service slows down, the driver slows down with it, so measured
latency stays flat exactly when real clients would be piling up.  This
generator is **open-loop**: arrival times are fixed by a deterministic
seeded schedule *before* the run, and each request fires at its
scheduled instant whether or not earlier ones have returned — queueing
delay, shed behavior, and coalescing effectiveness are measured
honestly.

Three pieces, each usable on its own:

* :func:`make_schedule` — deterministic arrival schedule for a seed:
  steady (Poisson arrivals at a fixed rate), ``burst`` (steady baseline
  plus periodic synchronized bursts), or ``ramp`` (linearly increasing
  rate).  Requests mix ``/v1/solve`` and ``/v1/simulate`` traffic and
  draw their parameter configuration from a canonical pool under a
  Zipfian rank distribution — real planning traffic re-plans the same
  hot configurations over and over, which is precisely what the
  service's coalescing and memo layers exist for, so the generator must
  reproduce that skew to measure them.
* :func:`run_schedule` — the open-loop driver: a worker pool large
  enough that arrivals never wait for a free thread at the offered
  rates, issuing each request at its scheduled offset and recording
  per-request status + latency.
* :func:`summarize_phase` / :func:`build_report` — fold the raw samples
  and the server's own metric deltas (``GET /metrics.json`` before vs.
  after) into the ``repro.loadgen.report`` JSON consumed by
  ``python -m repro obs load <report>`` and gated as ``BENCH_load.json``.

Run standalone against a live service, or self-served::

    python benchmarks/loadgen.py --self-serve --profile steady \
        --rate 200 --duration 5 --out report.json
    python -m repro obs load report.json

``--batch N`` clumps consecutive solve arrivals into ``/v1/solve_batch``
requests (see :func:`batch_schedule`); ``--self-serve-workers N``
self-serves a sharded cluster (:mod:`repro.service.cluster`) instead of
the single process, and phase summaries then grow a per-worker-shard
breakdown from the coordinator's ``cluster.*`` metric deltas.

Everything is stdlib; schedules are bit-reproducible per seed.
"""

from __future__ import annotations

import argparse
import bisect
import json
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

#: Canonical parameter pool, ordered by Zipf rank (rank 0 = hottest).
#: Millisecond-fast configurations (the same family the service bench
#: uses) so offered rates in the hundreds of RPS are reachable in CI.
CONFIG_POOL: tuple[dict[str, Any], ...] = tuple(
    {
        "te_core_days": 200.0,
        "case": case,
        "ideal_scale": 2000.0,
        "allocation": 30.0,
    }
    for case in (
        "24-12-6-3",
        "12-6-3-1.5",
        "6-3-1.5-0.75",
        "48-24-12-6",
        "36-18-9-4.5",
        "18-9-4.5-2.25",
        "60-30-15-7.5",
        "30-15-7.5-3.75",
    )
)

#: Extra fields a ``/v1/simulate`` request carries on top of the model
#: configuration.  Fixed (not drawn per request) so simulate traffic
#: coalesces per configuration exactly like solve traffic.
SIMULATE_FIELDS: dict[str, Any] = {
    "strategy": "ml-opt-scale",
    "runs": 10,
    "seed": 0,
    "jitter": 0.3,
}

PROFILES = ("steady", "burst", "ramp")


@dataclass(frozen=True)
class ScheduledRequest:
    """One planned arrival: fire ``body`` at ``POST /v1/<endpoint>``
    exactly ``at`` seconds after the phase starts."""

    at: float
    endpoint: str
    body: dict[str, Any]
    rank: int  # Zipf rank of the drawn configuration (0 = hottest)


@dataclass
class RequestResult:
    """One observed completion (or transport failure: status 0)."""

    at: float
    endpoint: str
    status: int
    latency: float
    rank: int
    #: Solve items carried by this HTTP request (> 1 for solve_batch).
    items: int = 1


def zipf_weights(n: int, s: float) -> list[float]:
    """Normalized Zipf(s) probabilities for ranks ``0..n-1``.

    ``s = 0`` degenerates to uniform; larger ``s`` concentrates mass on
    the low ranks (``s ~ 1`` is the classic web-traffic shape).
    """
    if n < 1:
        raise ValueError(f"need at least one rank, got {n}")
    raw = [1.0 / (rank + 1) ** s for rank in range(n)]
    total = sum(raw)
    return [w / total for w in raw]


def _zipf_cdf(n: int, s: float) -> list[float]:
    cdf: list[float] = []
    acc = 0.0
    for w in zipf_weights(n, s):
        acc += w
        cdf.append(acc)
    cdf[-1] = 1.0  # guard float drift so u=1.0 cannot fall off the end
    return cdf


def _arrival_times(
    profile: str,
    rate: float,
    duration: float,
    rng: random.Random,
    *,
    burst_period: float,
    burst_size: int,
    ramp_to: float | None,
) -> list[float]:
    """Arrival offsets in ``[0, duration)`` for the chosen profile."""
    times: list[float] = []
    if profile == "steady":
        t = rng.expovariate(rate)
        while t < duration:
            times.append(t)
            t += rng.expovariate(rate)
    elif profile == "burst":
        # Steady baseline plus a synchronized clump every burst_period:
        # the clump arrives within one millisecond, which is what makes
        # queue depth (and coalescing) spike.
        t = rng.expovariate(rate)
        while t < duration:
            times.append(t)
            t += rng.expovariate(rate)
        edge = burst_period
        while edge < duration:
            times.extend(
                edge + rng.uniform(0.0, 1e-3) for _ in range(burst_size)
            )
            edge += burst_period
        times.sort()
    elif profile == "ramp":
        # Linear rate ramp rate -> ramp_to via thinning: draw at the
        # peak rate, keep each arrival with probability rate(t)/peak.
        end_rate = rate if ramp_to is None else ramp_to
        peak = max(rate, end_rate)
        t = rng.expovariate(peak)
        while t < duration:
            current = rate + (end_rate - rate) * (t / duration)
            if rng.random() < current / peak:
                times.append(t)
            t += rng.expovariate(peak)
    else:
        raise ValueError(f"unknown profile {profile!r}; choose from {PROFILES}")
    return times


def make_schedule(
    *,
    profile: str = "steady",
    rate: float = 100.0,
    duration: float = 5.0,
    seed: int = 0,
    skew: float = 1.1,
    simulate_fraction: float = 0.25,
    pool: Sequence[Mapping[str, Any]] = CONFIG_POOL,
    burst_period: float = 1.0,
    burst_size: int = 50,
    ramp_to: float | None = None,
) -> list[ScheduledRequest]:
    """Deterministic arrival schedule: same arguments -> same schedule.

    Parameters
    ----------
    profile:
        ``steady`` (Poisson at ``rate``), ``burst`` (steady plus
        ``burst_size`` synchronized arrivals every ``burst_period`` s),
        or ``ramp`` (rate climbing linearly from ``rate`` to
        ``ramp_to`` over ``duration``).
    rate / duration:
        Offered arrivals per second and phase length in seconds.
    seed:
        Everything random (arrival jitter, endpoint mix, configuration
        ranks) flows from one ``random.Random(seed)``.
    skew:
        Zipf exponent over ``pool`` ranks; 0 = uniform.
    simulate_fraction:
        Fraction of arrivals hitting ``/v1/simulate`` (rest solve).
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if not 0.0 <= simulate_fraction <= 1.0:
        raise ValueError(
            f"simulate_fraction must be in [0, 1], got {simulate_fraction}"
        )
    rng = random.Random(seed)
    times = _arrival_times(
        profile,
        rate,
        duration,
        rng,
        burst_period=burst_period,
        burst_size=burst_size,
        ramp_to=ramp_to,
    )
    cdf = _zipf_cdf(len(pool), skew)
    schedule: list[ScheduledRequest] = []
    for at in times:
        rank = bisect.bisect_left(cdf, rng.random())
        config = dict(pool[rank])
        if rng.random() < simulate_fraction:
            endpoint = "simulate"
            config.update(SIMULATE_FIELDS)
        else:
            endpoint = "solve"
        schedule.append(ScheduledRequest(at, endpoint, config, rank))
    return schedule


def batch_schedule(
    schedule: Sequence[ScheduledRequest], batch_n: int
) -> list[ScheduledRequest]:
    """Clump runs of solve arrivals into ``/v1/solve_batch`` requests.

    Walks the schedule in arrival order, folding up to ``batch_n``
    consecutive ``solve`` arrivals into one ``solve_batch`` request
    fired at the *first* member's offset (the batch body is
    ``{"requests": [...]}``, the member order preserved); ``simulate``
    arrivals pass through untouched and terminate the current run.  The
    result exercises the scatter/gather path with the same offered item
    rate and rank mix as the unbatched schedule.
    """
    if batch_n < 1:
        raise ValueError(f"batch size must be >= 1, got {batch_n}")
    out: list[ScheduledRequest] = []
    pending: list[ScheduledRequest] = []

    def flush() -> None:
        if not pending:
            return
        first = pending[0]
        out.append(
            ScheduledRequest(
                first.at,
                "solve_batch",
                {"requests": [r.body for r in pending]},
                first.rank,
            )
        )
        pending.clear()

    for req in schedule:
        if req.endpoint != "solve":
            flush()
            out.append(req)
            continue
        pending.append(req)
        if len(pending) >= batch_n:
            flush()
    flush()
    return out


# --------------------------------------------------------------- driver


def run_schedule(
    url: str,
    schedule: Sequence[ScheduledRequest],
    *,
    workers: int = 64,
    timeout: float = 30.0,
    keepalive: bool | None = None,
) -> list[RequestResult]:
    """Fire ``schedule`` open-loop against ``url``; return all results.

    Arrivals are dispatched at their scheduled offsets from a shared
    clock regardless of outstanding responses.  ``workers`` bounds the
    thread pool; size it above the worst expected concurrent in-flight
    count or late arrivals queue behind slow ones (the run records
    actual send times, so any such distortion is visible as send lag).

    Requests ride the process-wide pooled keep-alive transport: each
    worker thread effectively keeps one persistent connection, so the
    steady-state cost per request is the request itself, not a TCP
    handshake.  ``keepalive=False`` restores connection-per-request.
    """
    from repro.service.client import ServiceClient

    client = ServiceClient(url, timeout=timeout, keepalive=keepalive)
    results: list[RequestResult] = []
    results_lock = threading.Lock()
    cursor = 0
    cursor_lock = threading.Lock()
    epoch = time.perf_counter()

    def worker() -> None:
        nonlocal cursor
        while True:
            with cursor_lock:
                i = cursor
                if i >= len(schedule):
                    return
                cursor = i + 1
            req = schedule[i]
            delay = req.at - (time.perf_counter() - epoch)
            if delay > 0:
                time.sleep(delay)
            sent = time.perf_counter()
            try:
                status, _, _ = client.request(
                    "POST", f"/v1/{req.endpoint}", req.body
                )
            except OSError:
                status = 0  # transport failure: counted, not raised
            latency = time.perf_counter() - sent
            items = (
                len(req.body["requests"])
                if req.endpoint == "solve_batch"
                else 1
            )
            with results_lock:
                results.append(
                    RequestResult(
                        sent - epoch, req.endpoint, status, latency,
                        req.rank, items,
                    )
                )

    threads = [
        threading.Thread(target=worker, name=f"loadgen-{i}", daemon=True)
        for i in range(min(workers, len(schedule)))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    results.sort(key=lambda r: r.at)
    return results


# ------------------------------------------------------------- summary


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (the repo's histogram convention)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, round(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def _latency_ms(samples: Sequence[float]) -> dict[str, float]:
    return {
        "p50": round(percentile(samples, 50) * 1e3, 3),
        "p95": round(percentile(samples, 95) * 1e3, 3),
        "p99": round(percentile(samples, 99) * 1e3, 3),
        "max": round(max(samples, default=0.0) * 1e3, 3),
    }


def _metric(snapshot: Mapping[str, Any] | None, name: str) -> float:
    if not snapshot:
        return 0.0
    value = snapshot.get("metrics", snapshot).get(name, 0.0)
    if isinstance(value, Mapping):  # histogram summary -> count
        value = value.get("count", 0.0)
    try:
        return float(value)
    except (TypeError, ValueError):
        return 0.0


#: Server-side series folded into every phase summary as before/after
#: deltas (lifetime counters, so deltas isolate this phase's traffic).
DELTA_METRICS = (
    "service.executions",
    "service.coalesced",
    "service.rejected",
    "memo.hits",
    "memo.misses",
)


def transport_snapshot() -> dict[str, Any]:
    """Cumulative client-side transport state (see ``PooledTransport
    .stats``): connection counters, reuse ratio, and the retained
    connect-time samples.  Taken before/after a phase, two snapshots
    delta into that phase's :func:`transport_section`.  Always read
    from *this* process — the load generator is the client, so its
    transport tells the connection-churn story no matter whether the
    service is in-process, a subprocess cluster, or remote.
    """
    from repro.service.transport import TRANSPORT

    return TRANSPORT.stats()


def transport_section(
    before: Mapping[str, Any], after: Mapping[str, Any]
) -> dict[str, Any]:
    """Per-phase connection-churn report row from two snapshots.

    ``reuse_ratio`` is the phase's reused / (opened + reused); the
    connect-time percentiles cover only the connects that happened
    during the phase (new samples since ``before``).
    """
    opened = int(after["opened"] - before["opened"])
    reused = int(after["reused"] - before["reused"])
    total = opened + reused
    section: dict[str, Any] = {
        "opened": opened,
        "reused": reused,
        "replaced": int(after["replaced"] - before["replaced"]),
        "replays": int(after["replays"] - before["replays"]),
        "reuse_ratio": round(reused / total, 4) if total else 0.0,
    }
    prior = len(before.get("connect_samples", ()))
    fresh = list(after.get("connect_samples", ()))[prior:]
    if fresh:
        section["connect_ms"] = _latency_ms(fresh)
    return section


def _shard_breakdown(
    metrics_before: Mapping[str, Any] | None,
    metrics_after: Mapping[str, Any] | None,
) -> dict[str, dict[str, float]]:
    """Per-worker-shard metric deltas, keyed by shard id.

    Reads the coordinator's ``cluster.shard.<i>.<metric>`` routing
    counters and ``cluster.restarts.<i>`` series from the before/after
    snapshots; empty when the target is a single-process service (no
    shard labels exposed).
    """
    source = (metrics_after or {})
    names = source.get("metrics", source) or {}
    shards: dict[str, dict[str, float]] = {}
    for name in names:
        if name.startswith("cluster.shard."):
            rest = name[len("cluster.shard."):]
            shard, _, metric = rest.partition(".")
        elif name.startswith("cluster.restarts."):
            shard = name[len("cluster.restarts."):]
            metric = "restarts"
        else:
            continue
        if not shard.isdigit() or not metric:
            continue
        delta = _metric(metrics_after, name) - _metric(metrics_before, name)
        shards.setdefault(shard, {})[metric] = round(delta, 1)
    return {shard: shards[shard] for shard in sorted(shards, key=int)}


def summarize_phase(
    label: str,
    schedule: Sequence[ScheduledRequest],
    results: Sequence[RequestResult],
    *,
    metrics_before: Mapping[str, Any] | None = None,
    metrics_after: Mapping[str, Any] | None = None,
    transport_before: Mapping[str, Any] | None = None,
    transport_after: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Fold one phase's samples + server metric deltas into a report row.

    Against a cluster coordinator the row additionally carries a
    ``shards`` breakdown (per-worker request/retry/error/restart deltas,
    see :func:`_shard_breakdown`); batch-mode runs (any result carrying
    more than one solve item) additionally report ``ok_items`` /
    ``items_rps`` so throughput stays comparable with unbatched runs.
    When both ``transport_before``/``transport_after`` snapshots (see
    :func:`transport_snapshot`) are given, the row carries a
    ``transport`` section: connection reuse ratio and connect-time
    percentiles for the phase.
    """
    span_s = max((r.at + r.latency for r in results), default=0.0)
    ok = [r for r in results if r.status == 200]
    shed = [r for r in results if r.status == 429]
    errors = [r for r in results if r.status not in (200, 429)]
    deltas = {
        name: _metric(metrics_after, name) - _metric(metrics_before, name)
        for name in DELTA_METRICS
    }
    requests = len(results)
    unique_keys = len({(r.endpoint, r.rank) for r in results})
    coalesce_ratio = deltas["service.coalesced"] / requests if requests else 0.0
    summary = {
        "label": label,
        "requests": requests,
        "unique_keys": unique_keys,
        "offered_rps": round(len(schedule) / max(
            (schedule[-1].at if schedule else 0.0), 1e-9
        ), 1),
        "duration_s": round(span_s, 3),
        "ok": len(ok),
        "shed": len(shed),
        "errors": len(errors),
        "ok_rps": round(len(ok) / span_s, 2) if span_s > 0 else 0.0,
        "shed_rate": round(len(shed) / requests, 4) if requests else 0.0,
        "latency_ms": _latency_ms([r.latency for r in ok]),
        "server": {
            name.replace("service.", "").replace("memo.", "memo_"): round(d, 1)
            for name, d in deltas.items()
        },
        "coalesce_ratio": round(coalesce_ratio, 4),
    }
    if shed:
        summary["shed_latency_ms"] = _latency_ms([r.latency for r in shed])
    if any(r.items != 1 for r in results):
        ok_items = sum(r.items for r in ok)
        summary["ok_items"] = ok_items
        summary["items_rps"] = (
            round(ok_items / span_s, 1) if span_s > 0 else 0.0
        )
    if transport_before is not None and transport_after is not None:
        summary["transport"] = transport_section(
            transport_before, transport_after
        )
    shards = _shard_breakdown(metrics_before, metrics_after)
    if shards:
        summary["shards"] = shards
    return summary


def error_budget_section(
    metrics_after: Mapping[str, Any] | None,
    healthz: Mapping[str, Any] | None = None,
) -> dict[str, Any] | None:
    """Fold the server's ``service.slo.*`` gauges into a report section.

    ``None`` when the target ran without an SLO engine (no gauges
    exposed).  The section mirrors the server's own view verbatim —
    the numbers come from ``GET /metrics.json`` after the run, plus the
    final ``/healthz`` state — so the report and the live endpoints can
    be cross-checked.
    """
    from repro.obs.sloengine import STATES

    source = metrics_after or {}
    gauges = source.get("metrics", source) or {}
    if "service.slo.state" not in gauges:
        return None

    def g(name: str) -> float:
        try:
            return float(gauges.get(name, 0.0))
        except (TypeError, ValueError):
            return 0.0

    severity = int(g("service.slo.state"))
    section: dict[str, Any] = {
        "state": STATES[min(severity, len(STATES) - 1)],
        "error_budget": g("service.slo.error_budget"),
        "fast_burn_rate": g("service.slo.fast_burn_rate"),
        "slow_burn_rate": g("service.slo.slow_burn_rate"),
        "good": g("service.slo.good_total"),
        "bad": g("service.slo.bad_total"),
        "budget_consumed": g("service.slo.budget_consumed"),
    }
    if healthz:
        section["healthz_status"] = healthz.get("status")
        slo_view = healthz.get("slo") or {}
        if slo_view.get("state") is not None:
            section["healthz_state"] = slo_view["state"]
    return section


def build_report(
    config: Mapping[str, Any],
    phases: Sequence[Mapping[str, Any]],
    *,
    error_budget: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the ``repro.loadgen.report`` document.

    ``slo`` pulls the headline numbers the regression gate (and a human
    skimming the file) cares about: sustained throughput and tail
    latency from the first phase, worst shed rate anywhere.
    ``error_budget`` (see :func:`error_budget_section`) rides along when
    the target service ran with an SLO engine.
    """
    phase_map = {p["label"]: dict(p) for p in phases}
    first = phases[0] if phases else {}
    report = {
        "kind": "repro.loadgen.report",
        "config": dict(config),
        "phases": phase_map,
        "slo": {
            "sustained_ok_rps": first.get("ok_rps", 0.0),
            "sustained_p99_ms": first.get("latency_ms", {}).get("p99", 0.0),
            "worst_shed_rate": max(
                (p.get("shed_rate", 0.0) for p in phases), default=0.0
            ),
            "best_coalesce_ratio": max(
                (p.get("coalesce_ratio", 0.0) for p in phases), default=0.0
            ),
        },
    }
    first_transport = first.get("transport")
    if first_transport:
        report["slo"]["sustained_reuse_ratio"] = first_transport.get(
            "reuse_ratio", 0.0
        )
    if error_budget is not None:
        report["error_budget"] = dict(error_budget)
    return report


# ----------------------------------------------------------------- CLI


def _fetch_metrics(url: str) -> dict[str, Any] | None:
    from repro.service.client import ServiceClient, ServiceError

    try:
        return ServiceClient(url).metrics()
    except (ServiceError, OSError):
        return None


def _fetch_healthz(url: str) -> dict[str, Any] | None:
    from repro.service.client import ServiceClient, ServiceError

    try:
        return ServiceClient(url).healthz()
    except (ServiceError, OSError):
        return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Open-loop load generator for repro.service"
    )
    parser.add_argument("--url", help="base URL of a running service")
    parser.add_argument(
        "--self-serve",
        action="store_true",
        help="start an in-process service (memory-only) and load it",
    )
    parser.add_argument(
        "--self-serve-workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "with --self-serve: run a sharded cluster with N worker "
            "subprocesses instead of the single-process service"
        ),
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=0,
        metavar="N",
        help=(
            "clump up to N consecutive solve arrivals into one "
            "/v1/solve_batch request (0 = unbatched)"
        ),
    )
    parser.add_argument(
        "--no-keepalive",
        action="store_true",
        help=(
            "open a fresh connection per request instead of pooling "
            "keep-alive connections (and, with --self-serve, run the "
            "service with keep-alive off too); see also $REPRO_KEEPALIVE=0"
        ),
    )
    parser.add_argument(
        "--fail-on-errors",
        action="store_true",
        help="exit 1 if any request errored (CI smoke gates on this)",
    )
    parser.add_argument("--profile", choices=PROFILES, default="steady")
    parser.add_argument("--rate", type=float, default=100.0)
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--skew", type=float, default=1.1)
    parser.add_argument("--simulate-fraction", type=float, default=0.25)
    parser.add_argument("--burst-period", type=float, default=1.0)
    parser.add_argument("--burst-size", type=int, default=50)
    parser.add_argument("--ramp-to", type=float, default=None)
    parser.add_argument("--workers", type=int, default=64)
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker threads for --self-serve")
    parser.add_argument("--queue-max", type=int, default=64,
                        help="queue bound for --self-serve")
    parser.add_argument(
        "--slo",
        default=None,
        metavar="TARGET:THRESHOLD",
        help=(
            "with --self-serve: run the service with an SLO spec (e.g. "
            "99.9:0.25s); the report then grows an error_budget section "
            "from the server's service.slo.* gauges"
        ),
    )
    parser.add_argument("--slo-fast-window", type=float, default=None,
                        metavar="S", help="fast burn-rate window seconds")
    parser.add_argument("--slo-slow-window", type=float, default=None,
                        metavar="S", help="slow burn-rate window seconds")
    parser.add_argument(
        "--spans-dir",
        default=None,
        metavar="DIR",
        help=(
            "with --self-serve: record request spans under DIR "
            "(spans.jsonl, or spans-shard<i>.jsonl per cluster worker)"
        ),
    )
    parser.add_argument("--out", type=lambda p: p, default=None,
                        help="write the report JSON here (default: stdout)")
    args = parser.parse_args(argv)
    if bool(args.url) == bool(args.self_serve):
        parser.error("exactly one of --url / --self-serve is required")

    schedule = make_schedule(
        profile=args.profile,
        rate=args.rate,
        duration=args.duration,
        seed=args.seed,
        skew=args.skew,
        simulate_fraction=args.simulate_fraction,
        burst_period=args.burst_period,
        burst_size=args.burst_size,
        ramp_to=args.ramp_to,
    )
    if args.batch:
        schedule = batch_schedule(schedule, args.batch)
    config = {
        "profile": args.profile,
        "rate": args.rate,
        "duration": args.duration,
        "seed": args.seed,
        "skew": args.skew,
        "simulate_fraction": args.simulate_fraction,
        "scheduled_requests": len(schedule),
    }
    if args.batch:
        config["batch"] = args.batch
    if args.self_serve_workers:
        config["cluster_workers"] = args.self_serve_workers
    if args.slo:
        config["slo"] = args.slo
    keepalive = False if args.no_keepalive else None
    if args.no_keepalive:
        config["keepalive"] = False

    service = None
    previous_recorder = None
    url = args.url
    if args.self_serve and args.self_serve_workers:
        from repro.service.cluster import ClusterService

        service = ClusterService(
            port=0,
            workers=args.self_serve_workers,
            store_dir=None,
            jobs=args.jobs,
            queue_max=args.queue_max,
            spans_dir=args.spans_dir,
            slo=args.slo,
            slo_fast_window_s=args.slo_fast_window,
            slo_slow_window_s=args.slo_slow_window,
            keepalive=keepalive,
        ).start()
        url = service.url
    elif args.self_serve:
        from repro.service.server import ReproService

        if args.spans_dir is not None:
            from pathlib import Path

            from repro.obs.spans import SpanRecorder, set_span_recorder

            sink = Path(args.spans_dir) / "spans.jsonl"
            sink.parent.mkdir(parents=True, exist_ok=True)
            previous_recorder = set_span_recorder(
                SpanRecorder(sink, maxlen=10_000)
            )
        service = ReproService(
            port=0,
            store_path=None,
            jobs=args.jobs,
            queue_max=args.queue_max,
            slo=args.slo,
            slo_fast_window_s=args.slo_fast_window,
            slo_slow_window_s=args.slo_slow_window,
            keepalive=keepalive,
        ).start()
        url = service.url
    try:
        before = _fetch_metrics(url)
        transport_before = transport_snapshot()
        results = run_schedule(
            url, schedule, workers=args.workers, keepalive=keepalive
        )
        transport_after = transport_snapshot()
        after = _fetch_metrics(url)
        # Health (and its SLO view) must be read while the service is
        # still up — close() drains and the endpoints go away.
        health = _fetch_healthz(url)
    finally:
        if service is not None:
            service.close()
        if previous_recorder is not None:
            from repro.obs.spans import set_span_recorder

            set_span_recorder(previous_recorder)

    phase = summarize_phase(
        args.profile, schedule, results,
        metrics_before=before, metrics_after=after,
        transport_before=transport_before, transport_after=transport_after,
    )
    report = build_report(
        config, [phase],
        error_budget=error_budget_section(after, health),
    )
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(text + "\n")
        print(f"report written to {args.out}")
    else:
        print(text)
    if args.fail_on_errors and phase.get("errors", 0):
        print(f"FAIL: {phase['errors']} request(s) errored")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
