"""Sustained-load bench: the service under open-loop seeded traffic.

Three phases against one in-process service, each summarized with the
server's own metric deltas and folded into
``benchmarks/results/BENCH_load.json``:

* **sustained** — steady Poisson arrivals over a warmed cache: the
  service's sustainable throughput and tail latency when traffic looks
  like healthy production (the regression-gated numbers).
* **overload** — unique cold requests at ~2x the measured closed-loop
  capacity into a tiny queue: proves the bounded queue sheds (429) under
  genuine overload instead of building unbounded backlog, and records
  the shed rate and shed-response latency (rejections must be cheap).
* **skew** — Zipfian hot-key traffic into a cold cache: proves request
  coalescing + memoization collapse duplicate-heavy load to one
  execution per unique key, and records the coalesce ratio.

The structural assertions (no sheds when provisioned, sheds under 2x
overload, exactly one execution per unique key) are deterministic;
wall-clock numbers are recorded, not asserted — ``regress.py`` compares
them across runs.
"""

from __future__ import annotations

import time

from benchmarks.conftest import RESULTS_DIR
from benchmarks.loadgen import (
    ScheduledRequest,
    build_report,
    make_schedule,
    run_schedule,
    summarize_phase,
    transport_snapshot,
)
from repro.core.memo import SOLVER_CACHE
from repro.obs.metrics import METRICS
from repro.parallel.timing import write_bench_json
from repro.service.client import ServiceClient
from repro.service.server import ReproService

SEED = 42


def _unique_body(i: int) -> dict:
    # Distinct te_core_days -> distinct canonical key -> cold every time.
    return {
        "te_core_days": 150.0 + 0.001 * i,
        "case": "24-12-6-3",
        "ideal_scale": 2000.0,
        "allocation": 30.0,
        "strategy": "ml-opt-scale",
        "runs": 5,
        "seed": 0,
    }


def _warm(client: ServiceClient, schedule) -> None:
    """Pre-answer every unique key so the phase measures warm traffic."""
    for body in {
        (req.endpoint, req.rank): req.body for req in schedule
    }.values():
        status, _, _ = client.request(
            "POST",
            "/v1/simulate" if "runs" in body else "/v1/solve",
            body,
        )
        assert status == 200, body


def _probe_capacity(client: ServiceClient, n: int = 12) -> float:
    """Closed-loop cold requests/second with jobs=1 (drain ceiling)."""
    start = time.perf_counter()
    for i in range(n):
        status, _, _ = client.request(
            "POST", "/v1/simulate", _unique_body(1_000_000 + i)
        )
        assert status == 200
    return n / (time.perf_counter() - start)


def test_bench_load_sustained_overload_skew():
    SOLVER_CACHE.clear()
    SOLVER_CACHE.detach_store()
    phases = []

    # ------------------------------------------------ sustained (warm)
    sustained_schedule = make_schedule(
        profile="steady",
        rate=200.0,
        duration=3.0,
        seed=SEED,
        skew=1.1,
        simulate_fraction=0.25,
    )
    with ReproService(port=0, store_path=None, jobs=2) as svc:
        client = ServiceClient(svc.url)
        _warm(client, sustained_schedule)
        before = client.metrics()
        transport_before = transport_snapshot()
        results = run_schedule(svc.url, sustained_schedule)
        transport_after = transport_snapshot()
        after = client.metrics()
    sustained = summarize_phase(
        "sustained", sustained_schedule, results,
        metrics_before=before, metrics_after=after,
        transport_before=transport_before, transport_after=transport_after,
    )
    # Warm cache + provisioned queue: nothing may shed or fail.
    assert sustained["shed"] == 0
    assert sustained["errors"] == 0
    assert sustained["ok"] == len(sustained_schedule)
    # The pooled transport must actually keep connections alive: under
    # steady load the vast majority of requests ride a reused socket.
    assert sustained["transport"]["reuse_ratio"] >= 0.95, sustained["transport"]
    phases.append(sustained)

    # ------------------------------------------------ overload (2x cold)
    SOLVER_CACHE.clear()
    with ReproService(
        port=0, store_path=None, jobs=1, queue_max=4, retry_after=0.2
    ) as svc:
        client = ServiceClient(svc.url)
        capacity = _probe_capacity(client)
        offered = 2.0 * capacity
        n_requests = max(60, int(offered * 1.5))
        overload_schedule = [
            ScheduledRequest(i / offered, "simulate", _unique_body(i), i)
            for i in range(n_requests)
        ]
        before = client.metrics()
        transport_before = transport_snapshot()
        results = run_schedule(svc.url, overload_schedule, workers=32)
        transport_after = transport_snapshot()
        after = client.metrics()
    overload = summarize_phase(
        "overload", overload_schedule, results,
        metrics_before=before, metrics_after=after,
        transport_before=transport_before, transport_after=transport_after,
    )
    overload["offered_over_capacity"] = round(offered / capacity, 2)
    overload["probed_capacity_rps"] = round(capacity, 1)
    # Open-loop at 2x the drain ceiling into a 4-slot queue MUST shed —
    # and everything not shed must still succeed.
    assert overload["shed"] > 0
    assert overload["errors"] == 0
    assert overload["ok"] + overload["shed"] == n_requests
    phases.append(overload)

    # ------------------------------------------------ skew (cold, Zipf)
    SOLVER_CACHE.clear()
    skew_schedule = make_schedule(
        profile="steady",
        rate=150.0,
        duration=2.0,
        seed=SEED + 1,
        skew=1.5,
        simulate_fraction=0.25,
    )
    unique_keys = len({(r.endpoint, r.rank) for r in skew_schedule})
    executions_before = METRICS.counter("service.executions").value
    with ReproService(
        port=0, store_path=None, jobs=2, queue_max=len(skew_schedule)
    ) as svc:
        client = ServiceClient(svc.url)
        before = client.metrics()
        transport_before = transport_snapshot()
        results = run_schedule(svc.url, skew_schedule)
        transport_after = transport_snapshot()
        after = client.metrics()
    executions = METRICS.counter("service.executions").value - executions_before
    skew = summarize_phase(
        "skew", skew_schedule, results,
        metrics_before=before, metrics_after=after,
        transport_before=transport_before, transport_after=transport_after,
    )
    # Coalescing + memo collapse Zipf-skewed duplicates to exactly one
    # execution per unique (endpoint, configuration) key.
    assert skew["errors"] == 0
    assert skew["shed"] == 0
    assert executions == unique_keys
    phases.append(skew)

    report = build_report(
        {
            "seed": SEED,
            "profiles": ["steady", "open-loop-2x", "steady-zipf-1.5"],
            "pool_size": 8,
        },
        phases,
    )
    path = write_bench_json(RESULTS_DIR / "BENCH_load.json", report)
    print(
        f"\n[load bench] sustained {sustained['ok_rps']} ok/s "
        f"(p99 {sustained['latency_ms']['p99']} ms, "
        f"conn reuse {sustained['transport']['reuse_ratio']:.1%}), "
        f"overload shed rate {overload['shed_rate']:.1%} at "
        f"{overload['offered_over_capacity']}x capacity, "
        f"skew: {skew['requests']} requests -> {executions} executions "
        f"(coalesce ratio {skew['coalesce_ratio']:.1%})"
    )
    print(f"[saved to {path}]")

    SOLVER_CACHE.clear()
