"""Benchmark harness configuration.

Every bench regenerates one paper table/figure: it runs the experiment
driver once (``benchmark.pedantic`` — the drivers are full experiments,
not microkernels), prints the paper-style rows, and writes them to
``benchmarks/results/<name>.txt`` so the artifacts survive the run.

Environment knobs:

* ``REPRO_BENCH_RUNS`` — simulation replicas per configuration for the
  Fig. 5/6 and Table IV benches (default 30; the paper uses 100 — set
  ``REPRO_BENCH_RUNS=100`` to match at ~3x the runtime).
* ``REPRO_JOBS`` — worker budget for the simulation ensembles (default 1
  = serial, so existing bench artifacts stay byte-identical; results are
  seed-stable, so any value reproduces the same numbers — only the
  wall-clock changes).  ``0`` means all cores.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_runs(default: int = 30) -> int:
    """Simulation replicas per configuration (env-overridable)."""
    return int(os.environ.get("REPRO_BENCH_RUNS", default))


def bench_jobs(default: int | None = None) -> int | None:
    """Ensemble worker budget for the simulation benches.

    ``None`` defers to :func:`repro.parallel.executor.resolve_jobs`
    (which itself reads ``REPRO_JOBS``, defaulting to serial); an
    explicit ``default`` is used when the variable is unset.
    """
    value = os.environ.get("REPRO_JOBS")
    if value is None:
        return default
    from repro.parallel.executor import resolve_jobs

    return resolve_jobs(value)


@pytest.fixture
def record_result():
    """Write a bench's rendered table to benchmarks/results/ and echo it."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _record
