"""Bench: Figure 3 — numerical confirmation of the single-level optimum."""

from repro.experiments.fig3 import run_fig3
from repro.util.tablefmt import format_table


def test_bench_fig3(benchmark, record_result):
    result = benchmark.pedantic(run_fig3, rounds=1, iterations=1)

    rows = []
    for scenario in (result.constant_cost, result.linear_cost):
        sol = scenario.solution
        rows.append(
            [
                scenario.label,
                f"{sol.x:.1f}",
                f"{sol.n:.0f}",
                f"{scenario.paper_optimum[0]:.0f}",
                f"{scenario.paper_optimum[1]:.0f}",
                f"{sol.expected_wallclock / 86_400.0:.3f}",
                sol.iterations,
            ]
        )
    table = format_table(
        ["scenario", "x*", "N*", "paper x*", "paper N*", "E(T_w) days", "iters"],
        rows,
        title="Figure 3 - single-level optimum (T_e=4,000 core-days, N^(*)=100k)",
    )
    record_result("fig3", table)

    # Exact reproduction of the paper's quoted optima.
    assert round(result.constant_cost.solution.x) == 797
    assert abs(result.constant_cost.solution.n - 81_746) <= 2
    assert round(result.linear_cost.solution.x) == 140
    assert abs(result.linear_cost.solution.n - 20_215) <= 2
