"""Bench: Fig. 4b (extension) — abstract simulator vs functional ground truth.

The paper validates its simulator against real cluster runs (< 4 %); here
the reference is the functional end-to-end simulation (real Heat kernel +
functional FTI + node-level failures), driven by the identical failure
traces.
"""

from benchmarks.conftest import bench_runs
from repro.experiments.fig4b import run_fig4b
from repro.util.tablefmt import format_table


def test_bench_fig4b(benchmark, record_result):
    n_seeds = max(6, bench_runs() // 3)
    result = benchmark.pedantic(
        run_fig4b, kwargs={"n_seeds": n_seeds}, rounds=1, iterations=1
    )
    rows = [
        [i, f"{f:.1f}", f"{a:.1f}"]
        for i, (f, a) in enumerate(
            zip(result.functional_runs, result.abstract_runs)
        )
    ]
    table = format_table(
        ["trace", "functional (s)", "abstract (s)"],
        rows,
        title=(
            "Figure 4b - abstract simulator vs functional ground truth "
            f"(paired traces; mean diff "
            f"{100 * result.relative_difference:.2f}%, paper criterion < 4%)"
        ),
    )
    record_result("fig4b", table)
    assert result.relative_difference < 0.04
