"""Bench: Table IV — constant PFS checkpoint cost (WCT days + efficiency).

Paper values for reference (T_e = 2m core-days, costs 50/100/200/2000 s):
ML(opt-scale) 10.6-14.6 days at efficiency 0.158-0.2; SL(ori-scale)
~890 days at 0.002.  Shape assertions: ML(opt-scale) wins every cell,
beats ML(ori-scale) on efficiency, and SL(ori-scale) collapses.
"""

from benchmarks.conftest import bench_jobs, bench_runs
from repro.experiments.table4 import TABLE4_BLOCK_ALLOCATIONS, run_table4
from repro.util.tablefmt import format_table

STRATEGIES = ("ml-opt-scale", "sl-opt-scale", "ml-ori-scale", "sl-ori-scale")
PAPER_ROWS = {
    "ml-opt-scale": ("14.6/0.158", "12.8/0.173", "11.1/0.193"),
    "sl-opt-scale": ("37.3/0.092", "23.2/0.123", "17.2/0.146"),
    "ml-ori-scale": ("15.4/0.130", "13.4/0.150", "11.7/0.171"),
    "sl-ori-scale": ("890/0.002", "892/0.002", "890/0.002"),
}


def test_bench_table4(benchmark, record_result):
    cases = ("16-12-8-4", "8-6-4-2", "4-3-2-1")
    result = benchmark.pedantic(
        run_table4,
        kwargs={"n_runs": max(5, bench_runs() // 3), "jobs": bench_jobs()},
        rounds=1,
        iterations=1,
    )

    sections = []
    for allocation in TABLE4_BLOCK_ALLOCATIONS:
        rows = []
        for strategy in STRATEGIES:
            row = [strategy]
            for case in cases:
                wct = result.wct_days(allocation, case, strategy)
                eff = result.efficiency(allocation, case, strategy)
                row.append(f"{wct:.1f}/{eff:.3f}")
            row.append(" | ".join(PAPER_ROWS[strategy]))
            rows.append(row)
        sections.append(
            format_table(
                ["strategy", *[f"{c} WCT/eff" for c in cases], "paper (3 cases)"],
                rows,
                title=f"Table IV - constant PFS cost, A={allocation:.0f}s block",
            )
        )
    record_result("table4", "\n\n".join(sections))

    for allocation in TABLE4_BLOCK_ALLOCATIONS:
        for case in cases:
            case_result = result.blocks[allocation][case]
            analytic_best = case_result.solutions["ml-opt-scale"].expected_wallclock
            best_wct = result.wct_days(allocation, case, "ml-opt-scale")
            for other in STRATEGIES[1:]:
                # analytic ordering strict; simulated means within noise
                # tolerance for the mild cases, where the analytic ML(opt)
                # vs ML(ori) gap is only ~2-3 % (the paper's own is 5 %)
                other_solution = case_result.solutions[other]
                if other_solution.feasible:
                    assert analytic_best < other_solution.expected_wallclock
                assert best_wct < result.wct_days(allocation, case, other) * 1.05
            assert result.efficiency(
                allocation, case, "ml-opt-scale"
            ) > result.efficiency(allocation, case, "ml-ori-scale")
        # the classic-Young catastrophe
        assert result.wct_days(allocation, "16-12-8-4", "sl-ori-scale") > 150.0
        assert (
            result.efficiency(allocation, "16-12-8-4", "sl-ori-scale") < 0.02
        )
