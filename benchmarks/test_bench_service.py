"""Perf bench: the optimization service under a duplicate-heavy load.

Checkpoint-planning traffic is duplicate-heavy by nature — a malleable
application re-plans on every scale change, but the configuration space
it cycles through is tiny.  This bench drives an in-process
:class:`~repro.service.server.ReproService` with a synthetic load of
``DUPLICATION``x repeated requests over a small set of unique
configurations, from several concurrent client threads, and records

* sustained requests/second over the whole run,
* the combined coalesce+memo+persist hit rate
  (``1 - executions / requests``), and
* the persistent-store hit rate of a simulated cold restart (in-memory
  cache cleared, same sqlite file).

The structural assertions (exactly one execution per unique
configuration; restart answers every unique configuration from disk) are
deterministic; wall-clock numbers land in
``benchmarks/results/BENCH_service.json`` for cross-run comparison and
are not asserted.
"""

from __future__ import annotations

import tempfile
import threading
import time
from pathlib import Path

from benchmarks.conftest import RESULTS_DIR
from repro.core.memo import SOLVER_CACHE
from repro.obs.metrics import METRICS
from repro.parallel.timing import write_bench_json
from repro.service.client import ServiceClient
from repro.service.server import ReproService

#: Millisecond-fast unique configurations (distinct failure cases).
CASES = ("24-12-6-3", "12-6-3-1.5", "6-3-1.5-0.75", "48-24-12-6")
#: Requests issued per unique configuration.
DUPLICATION = 40
#: Concurrent client threads.
CLIENTS = 8


def _body(case: str) -> dict:
    return {
        "te_core_days": 200.0,
        "case": case,
        "ideal_scale": 2000.0,
        "allocation": 30.0,
    }


def _counter(name: str) -> float:
    return METRICS.counter(name).value


def _drive(url: str, requests: list[dict]) -> float:
    """Fire ``requests`` from ``CLIENTS`` threads; returns elapsed seconds."""
    client = ServiceClient(url)
    cursor = iter(range(len(requests)))
    lock = threading.Lock()

    def worker() -> None:
        while True:
            with lock:
                i = next(cursor, None)
            if i is None:
                return
            status, _, _ = client.request("POST", "/v1/solve", requests[i])
            assert status == 200, requests[i]

    threads = [threading.Thread(target=worker) for _ in range(CLIENTS)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - start


def test_bench_service_duplicate_heavy_load():
    SOLVER_CACHE.clear()
    SOLVER_CACHE.detach_store()
    requests = [_body(case) for case in CASES] * DUPLICATION
    # Interleave duplicates so concurrent in-flight repeats actually occur.
    total = len(requests)

    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "bench-results.sqlite"

        executions_before = _counter("service.executions")
        coalesced_before = _counter("service.coalesced")
        with ReproService(
            port=0, store_path=store_path, queue_max=total, jobs=2
        ) as svc:
            warm_seconds = _drive(svc.url, requests)
        executions = _counter("service.executions") - executions_before
        coalesced = _counter("service.coalesced") - coalesced_before

        # Exactly one solver execution per unique configuration: every
        # duplicate was answered by coalescing or the memo cache.
        assert executions == len(CASES)
        hit_rate = 1.0 - executions / total

        # Cold restart: fresh memory, same sqlite file -> every unique
        # configuration must come back from the persistent store.
        SOLVER_CACHE.clear()
        persist_before = SOLVER_CACHE.stats().persist_hits
        executions_before = _counter("service.executions")
        with ReproService(port=0, store_path=store_path) as svc:
            cold_seconds = _drive(svc.url, requests)
        assert _counter("service.executions") - executions_before == 0
        persist_hits = SOLVER_CACHE.stats().persist_hits - persist_before
        assert persist_hits >= len(CASES)

    payload = {
        "config": {
            "unique_configurations": len(CASES),
            "duplication": DUPLICATION,
            "total_requests": total,
            "client_threads": CLIENTS,
            "service_jobs": 2,
        },
        "warm": {
            "seconds": round(warm_seconds, 4),
            "requests_per_second": round(total / warm_seconds, 1),
            "solver_executions": executions,
            "coalesced": coalesced,
            "hit_rate": round(hit_rate, 4),
        },
        "cold_restart": {
            "seconds": round(cold_seconds, 4),
            "requests_per_second": round(total / cold_seconds, 1),
            "solver_executions": 0,
            "persist_hits": persist_hits,
        },
    }
    path = write_bench_json(RESULTS_DIR / "BENCH_service.json", payload)
    print(
        f"\n[service bench] {total} requests "
        f"({len(CASES)} unique x {DUPLICATION}): "
        f"{payload['warm']['requests_per_second']} req/s warm, "
        f"hit rate {hit_rate:.1%}, "
        f"{payload['cold_restart']['requests_per_second']} req/s after "
        "cold restart (all from persistent store)"
    )
    print(f"[saved to {path}]")

    SOLVER_CACHE.clear()
