"""Cluster scale-out bench: scatter/gather vs the single-process service.

One cold ``POST /v1/solve_batch`` of unique configurations, answered
twice: by a single-process :class:`ReproService` (one core, however the
kernel vectorizes) and by a :class:`ClusterService` with four worker
subprocesses (the coordinator scatters per-shard slices that solve
concurrently).  Both answers must be byte-identical — the cluster's
safety invariant — and the run records items/second for each topology
into ``benchmarks/results/BENCH_cluster.json`` for ``regress.py``.

The ≥2x speedup floor is asserted only where it can physically hold
(``os.cpu_count() >= 4``): the whole point of the cluster is escaping
the GIL, so on a single-core box the subprocesses time-slice one core
and the floor is meaningless.  CI runners are multi-core, so the floor
is enforced there.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import RESULTS_DIR
from repro.core.memo import SOLVER_CACHE
from repro.parallel.timing import write_bench_json
from repro.service.client import ServiceClient
from repro.service.cluster import ClusterService
from repro.service.server import ReproService

N_ITEMS = 256
N_WORKERS = 4
SPEEDUP_FLOOR = 2.0


def _bodies(n: int) -> list[dict]:
    # Distinct te_core_days -> distinct canonical keys -> all cold.
    return [
        {
            "te_core_days": 150.0 + 0.01 * i,
            "case": "24-12-6-3",
            "ideal_scale": 2000.0,
            "allocation": 30.0,
        }
        for i in range(n)
    ]


def _timed_batch(url: str, bodies: list[dict]) -> tuple[float, bytes]:
    client = ServiceClient(url, timeout=600.0)
    start = time.perf_counter()
    status, _, raw = client.request(
        "POST", "/v1/solve_batch", {"requests": bodies}
    )
    elapsed = time.perf_counter() - start
    assert status == 200
    return elapsed, raw


def test_bench_cluster_scatter_gather_speedup():
    bodies = _bodies(N_ITEMS)

    SOLVER_CACHE.clear()
    SOLVER_CACHE.detach_store()
    with ReproService(
        port=0, store_path=None, queue_max=2 * N_ITEMS
    ) as svc:
        single_seconds, single_raw = _timed_batch(svc.url, bodies)
    SOLVER_CACHE.clear()

    with ClusterService(
        workers=N_WORKERS, store_dir=None, queue_max=2 * N_ITEMS
    ) as svc:
        cluster_seconds, cluster_raw = _timed_batch(svc.url, bodies)

    # Safety invariant: shard count never changes a byte of the answer.
    assert cluster_raw == single_raw

    speedup = single_seconds / cluster_seconds
    report = {
        "kind": "repro.bench.cluster",
        "items": N_ITEMS,
        "cpu_count": os.cpu_count(),
        "single": {
            "seconds": round(single_seconds, 4),
            "items_per_second": round(N_ITEMS / single_seconds, 1),
        },
        "cluster": {
            "workers": N_WORKERS,
            "seconds": round(cluster_seconds, 4),
            "items_per_second": round(N_ITEMS / cluster_seconds, 1),
        },
        "speedup": round(speedup, 2),
        "byte_identical": True,
    }
    path = write_bench_json(RESULTS_DIR / "BENCH_cluster.json", report)
    print(
        f"\n[cluster bench] {N_ITEMS} cold solves: "
        f"single {report['single']['items_per_second']} items/s, "
        f"{N_WORKERS} workers {report['cluster']['items_per_second']} "
        f"items/s ({speedup:.2f}x)"
    )
    print(f"[saved to {path}]")

    if (os.cpu_count() or 1) >= N_WORKERS:
        assert speedup >= SPEEDUP_FLOOR, (
            f"{N_WORKERS}-worker cluster only {speedup:.2f}x faster than "
            f"single-process on a {os.cpu_count()}-core machine "
            f"(floor {SPEEDUP_FLOOR}x)"
        )

    SOLVER_CACHE.clear()
