"""Perf bench: the batched replica engine vs the per-replica loop.

Runs the paper's headline workload (Table II rates, T_e = 3e6
core-days, case 16-12-8-4, ML(opt-scale) solution, censor cap) as a
100-run ensemble on one core, once with ``batch=False`` (the historical
per-replica loop) and once with ``batch=True`` (``simulate_batch``
struct-of-arrays), asserts bit-identical results, and records the
single-core ensemble throughput to
``benchmarks/results/BENCH_batch.json``.

The two sides are timed interleaved over several rounds and compared
min-to-min, so a load spike mid-bench skews neither side: each side's
minimum approaches its unloaded cost.

Acceptance: the batched engine is >= 5x faster than the per-replica
loop for a 100-run ensemble on one core.  ``batch.speedup`` and
``batch.per_replica_us`` are gated against the committed baseline by
``benchmarks/regress.py``.
"""

from __future__ import annotations

import time

from benchmarks.conftest import RESULTS_DIR, bench_runs
from repro.core.solutions import compare_all_strategies
from repro.experiments.config import make_params
from repro.experiments.fig5 import CENSOR_CAP_SECONDS
from repro.parallel.timing import write_bench_json
from repro.sim.engine import simulate
from repro.sim.ensemble import run_ensemble
from repro.sim.runner import config_from_solution

BENCH_SEED = 20140604
#: The paper's headline setting: Table II rates, 3m core-day workload.
TE_CORE_DAYS = 3e6
CASE = "16-12-8-4"
#: Interleaved timing rounds per engine (min-to-min comparison).
ROUNDS = 3
#: Minimum accepted single-core speedup of batch over the replica loop.
MIN_SPEEDUP = 5.0


def _reference_config():
    params = make_params(TE_CORE_DAYS, CASE)
    solution = compare_all_strategies(params)["ml-opt-scale"]
    return config_from_solution(
        params, solution, jitter=0.3, max_wallclock=CENSOR_CAP_SECONDS
    )


def test_bench_batch_engine(benchmark):
    config = _reference_config()
    n_runs = max(100, bench_runs(100))

    # Warm the schedule/cost-array caches so neither side pays the first
    # build (both engines share them).
    simulate(config, seed=0)

    def loop_run():
        return run_ensemble(
            config, n_runs=n_runs, seed=BENCH_SEED, jobs=1, batch=False
        )

    def batch_run():
        return run_ensemble(
            config, n_runs=n_runs, seed=BENCH_SEED, jobs=1, batch=True
        )

    serial_seconds = batch_seconds = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        serial = loop_run()
        serial_seconds = min(serial_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        batched = batch_run()
        batch_seconds = min(batch_seconds, time.perf_counter() - start)

    # One recorded pedantic round so pytest-benchmark's own stats track
    # the batched engine too (and contribute one more batch sample).
    benchmark.pedantic(batch_run, rounds=1, iterations=1)
    batch_seconds = min(batch_seconds, benchmark.stats.stats.min)

    # The headline guarantee: batching never changes the numbers.
    assert batched == serial

    speedup = serial_seconds / batch_seconds if batch_seconds > 0 else 0.0
    payload = {
        "config": {
            "te_core_days": TE_CORE_DAYS,
            "case": CASE,
            "strategy": "ml-opt-scale",
            "intervals": list(config.intervals),
            "productive_seconds": config.productive_seconds,
        },
        "n_runs": n_runs,
        "timing_rounds": ROUNDS,
        "serial_seconds": round(serial_seconds, 4),
        "batch_seconds": round(batch_seconds, 4),
        "results_identical": True,
        "batch": {
            "speedup": round(speedup, 2),
            "per_replica_us": round(batch_seconds / n_runs * 1e6, 1),
        },
    }
    path = write_bench_json(RESULTS_DIR / "BENCH_batch.json", payload)
    print(f"\n[saved to {path}]\n{payload}")

    assert speedup >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x single-core batch speedup for "
        f"{n_runs} replicas, got {speedup:.2f}x "
        f"({serial_seconds:.2f}s serial vs {batch_seconds:.2f}s batch)"
    )
