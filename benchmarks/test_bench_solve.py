"""Perf bench: the vectorized sweep solver vs per-config Algorithm 1.

Solves a Fig. 5-shaped parameter sweep — all six failure-rate cases
crossed with a 12-point ``max_scale`` grid (geomspace 1e4..1e6), all
four strategies each — once as ``len(grid)`` scalar
``compare_all_strategies`` calls and once as a single
``batch_compare_all_strategies`` kernel pass, asserts bit-identical
solutions, and records the sweep throughput to
``benchmarks/results/BENCH_solve.json``.

The two sides are timed interleaved over several rounds and compared
min-to-min, so a load spike mid-bench skews neither side; the memo
cache is cleared before every timed run so both sides pay full price.

Acceptance: the batched solver is >= 4x faster than the scalar loop on
this sweep.  ``solve.speedup`` and ``solve.per_config_us`` are gated
against the committed baseline by ``benchmarks/regress.py``.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from benchmarks.conftest import RESULTS_DIR
from repro.core.batch_solve import batch_compare_all_strategies
from repro.core.memo import SOLVER_CACHE
from repro.core.solutions import compare_all_strategies
from repro.experiments.config import FIG5_CASES, make_params
from repro.parallel.timing import write_bench_json

#: The Fig. 5 workload; the grid sweeps the admissible scale bound.
TE_CORE_DAYS = 3e6
#: max_scale grid points per case (cases x points configs total).
GRID_POINTS = 12
#: Interleaved timing rounds per solver (min-to-min comparison).
ROUNDS = 3
#: Minimum accepted speedup of the batched sweep over the scalar loop.
MIN_SPEEDUP = 4.0


def _sweep_grid():
    scales = np.geomspace(1e4, 1e6, num=GRID_POINTS)
    return [
        replace(make_params(TE_CORE_DAYS, case), max_scale=float(scale))
        for case in FIG5_CASES
        for scale in scales
    ]


def test_bench_batch_solve(benchmark):
    grid = _sweep_grid()

    def scalar_sweep():
        SOLVER_CACHE.clear()
        return [compare_all_strategies(params) for params in grid]

    def batch_sweep():
        SOLVER_CACHE.clear()
        return batch_compare_all_strategies(grid)

    # Warm numpy/ufunc dispatch and the import path outside the clock.
    batch_compare_all_strategies(grid[:1])

    scalar_seconds = batch_seconds = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        scalar = scalar_sweep()
        scalar_seconds = min(scalar_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        batched = batch_sweep()
        batch_seconds = min(batch_seconds, time.perf_counter() - start)

    # One recorded pedantic round so pytest-benchmark's own stats track
    # the batched solver too (and contribute one more batch sample).
    benchmark.pedantic(batch_sweep, rounds=1, iterations=1)
    batch_seconds = min(batch_seconds, benchmark.stats.stats.min)

    # The headline guarantee: batching never changes the numbers.
    assert batched == scalar

    n_configs = len(grid)
    speedup = scalar_seconds / batch_seconds if batch_seconds > 0 else 0.0
    payload = {
        "config": {
            "te_core_days": TE_CORE_DAYS,
            "cases": list(FIG5_CASES),
            "grid_points": GRID_POINTS,
            "n_configs": n_configs,
            "strategies": 4,
        },
        "timing_rounds": ROUNDS,
        "scalar_seconds": round(scalar_seconds, 4),
        "batch_seconds": round(batch_seconds, 4),
        "results_identical": True,
        "solve": {
            "speedup": round(speedup, 2),
            "per_config_us": round(batch_seconds / n_configs * 1e6, 1),
        },
    }
    path = write_bench_json(RESULTS_DIR / "BENCH_solve.json", payload)
    print(f"\n[saved to {path}]\n{payload}")

    assert speedup >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x batched sweep speedup for "
        f"{n_configs} configs, got {speedup:.2f}x "
        f"({scalar_seconds:.2f}s scalar vs {batch_seconds:.2f}s batch)"
    )
