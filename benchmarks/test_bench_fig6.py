"""Bench: Figure 6 — the larger workload (T_e = 10m core-days).

Paper finding: ML(opt-scale)'s relative gains shrink versus the fixed-scale
solutions because the (scale-limited) productive time dominates — quoted as
4.3-42.3 %.  The bench regenerates the portions and asserts the gain
contraction against the Fig. 5 workload.
"""

from benchmarks.conftest import bench_jobs, bench_runs
from repro.analysis.tables import portions_table
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import relative_gain, run_fig6


def test_bench_fig6(benchmark, record_result):
    cases = ("16-12-8-4", "8-6-4-2", "4-3-2-1")
    n_runs = max(5, bench_runs() // 2)
    result10 = benchmark.pedantic(
        run_fig6,
        kwargs={"cases": cases, "n_runs": n_runs, "jobs": bench_jobs()},
        rounds=1,
        iterations=1,
    )
    result3 = run_fig5(cases=cases, n_runs=n_runs, seed=20140604)

    sections = []
    for case in result10.cases:
        sections.append(
            portions_table(
                case.ensembles,
                title=f"Figure 6 - case {case.case} (T_e=10m core-days, days)",
            )
        )
    gains10 = relative_gain(result10)
    gains3 = relative_gain(result3)
    gain_lines = ["ML(opt) gain over ML(ori):  Te=3m  ->  Te=10m"]
    for case in cases:
        gain_lines.append(
            f"  {case}: {100 * gains3[case]:.1f}% -> {100 * gains10[case]:.1f}%"
        )
    sections.append("\n".join(gain_lines))
    record_result("fig6", "\n\n".join(sections))

    # Shape: ML(opt-scale) still wins, but by less than at Te=3m.
    for case in result10.cases:
        best = case.ensembles["ml-opt-scale"].mean_wallclock
        assert best < case.ensembles["ml-ori-scale"].mean_wallclock
    mean_gain10 = sum(gains10.values()) / len(gains10)
    mean_gain3 = sum(gains3.values()) / len(gains3)
    assert mean_gain10 < mean_gain3
