"""Benchmark suite: one target per paper table/figure."""
