"""Bench: Table II — checkpoint-cost characterization regeneration."""

from repro.experiments.table2 import paper_coefficients, run_table2
from repro.util.tablefmt import format_table


def test_bench_table2(benchmark, record_result):
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)

    rows = []
    for i, scale in enumerate(result.characterization.scales):
        ours = result.characterization.table[i]
        paper = result.paper_table[i]
        rows.append(
            [f"{scale:.0f} cores"]
            + [f"{ours[l]:.2f} / {paper[l]:.2f}" for l in range(4)]
        )
    coeff_rows = [
        [
            f"level {level + 1}",
            f"({ours[0]:.3f}, {ours[1]:.4f})",
            f"({paper[0]:.3f}, {paper[1]:.4f})",
        ]
        for level, (ours, paper) in enumerate(
            zip(result.fitted_coefficients, paper_coefficients())
        )
    ]
    table = (
        format_table(
            ["scale", "L1 ours/paper", "L2", "L3", "L4 (PFS)"],
            rows,
            title="Table II - checkpoint overhead of FTI (seconds), regenerated vs paper",
        )
        + "\n\n"
        + format_table(
            ["level", "fitted (eps, alpha)", "paper (eps, alpha)"],
            coeff_rows,
            title="Least-squares coefficients (Formula 19)",
        )
    )
    record_result("table2", table)

    # The fitted coefficients are the quantity the optimization consumes.
    for (ours_eps, ours_alpha), (paper_eps, paper_alpha) in zip(
        result.fitted_coefficients, paper_coefficients()
    ):
        if paper_alpha == 0.0:
            assert abs(ours_eps - paper_eps) / paper_eps < 0.1
        else:
            assert abs(ours_alpha - paper_alpha) / paper_alpha < 0.05
