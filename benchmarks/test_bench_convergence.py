"""Bench: convergence claims — Algorithm 1 outer iterations and the
single-level fixed point (paper: 7-15 and 30-40 respectively)."""

from repro.experiments.convergence import run_convergence
from repro.util.tablefmt import format_table


def test_bench_convergence(benchmark, record_result):
    study = benchmark.pedantic(run_convergence, rounds=1, iterations=1)

    rows = []
    for case, report in study.algorithm1_reports.items():
        rows.append(
            [
                case,
                report.outer_iterations,
                report.inner_iterations_total,
                f"{report.mu_residuals[-1]:.1e}",
                "yes" if report.monotone_tail else "no",
            ]
        )
    table = (
        format_table(
            ["case", "outer iters", "inner iters", "final residual", "contracting"],
            rows,
            title=(
                "Algorithm 1 convergence at delta=1e-12 "
                "(paper: 8 / 7 / 15 outer iterations)"
            ),
        )
        + f"\n\nsingle-level fixed point (Fig. 3 config, x0=100,000): "
        f"{study.single_level_iterations} iterations (paper: 30-40)"
    )
    record_result("convergence", table)

    for report in study.algorithm1_reports.values():
        assert report.outer_iterations <= 60
        assert report.mu_residuals[-1] < 1e-10
    assert study.single_level_iterations <= 40
