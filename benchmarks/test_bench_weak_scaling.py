"""Bench: the weak-scaling scenario (Section II generality claim).

Regenerates the two-regime finding: with near-linear (Gustafson) speedup
and fast restarts the optimal scale is the whole machine (scale
optimization is a strong-scaling phenomenon); with scale-proportional
restart costs the optimum moves interior even under weak scaling.
"""

from benchmarks.conftest import bench_runs
from repro.experiments.weak_scaling import run_weak_scaling
from repro.util.tablefmt import format_table


def test_bench_weak_scaling(benchmark, record_result):
    n_runs = max(4, bench_runs() // 5)

    def run():
        return (
            run_weak_scaling(n_runs=n_runs, seed=5, recovery="fast"),
            run_weak_scaling(recovery="slow"),
        )

    fast, slow = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for regime, result in (("fast restarts", fast), ("slow restarts", slow)):
        for name in ("ml-opt-scale", "ml-ori-scale", "sl-opt-scale"):
            sol = result.solutions[name]
            sim = (
                f"{result.ensembles[name].mean_wallclock / 86_400:.3f}"
                if result.ensembles
                else "-"
            )
            rows.append(
                [
                    regime,
                    name,
                    f"{sol.scale / 1000:.1f}k",
                    f"{sol.expected_wallclock / 86_400:.3f}",
                    sim,
                ]
            )
    table = format_table(
        ["regime", "strategy", "N*", "E(T_w) days", "simulated days"],
        rows,
        title="Weak scaling (Gustafson speedup): the two recovery regimes",
    )
    record_result("weak_scaling", table)

    assert fast.solutions["ml-opt-scale"].scale == 100_000.0
    assert slow.solutions["ml-opt-scale"].scale < 90_000.0
