"""Benches for the extension features (beyond the paper's evaluation).

* **Level selection** — the [22]-lineage capability the paper's intro
  references: exhaustively choose the subset of checkpoint levels worth
  enabling.  Reported: best subset per failure case + its gain over
  always-enabling everything.
* **Sensitivity** — regret of optimizing with misestimated inputs
  (kappa / failure rates / costs off by +-10 % and +-30 %).
* **Pareto** — the explicit wall-clock/efficiency frontier behind the
  Fig. 7 discussion.
"""

from benchmarks.conftest import bench_runs
from repro.core.algorithm1 import optimize
from repro.core.corrections import corrected_parameters, corrected_wallclock
from repro.core.selection import optimize_level_selection
from repro.core.sensitivity import sensitivity_report
from repro.analysis.pareto import pareto_sweep
from repro.experiments.config import make_params
from repro.sim.runner import simulate_solution
from repro.util.tablefmt import format_table


def test_bench_level_selection(benchmark, record_result):
    cases = ("16-12-8-4", "4-2-1-0.5")

    def run():
        rows = []
        for case in cases:
            params = make_params(3e6, case)
            all_levels = optimize(params).solution
            selected = optimize_level_selection(params)
            gain = (
                all_levels.expected_wallclock
                - selected.solution.expected_wallclock
            ) / all_levels.expected_wallclock
            rows.append(
                [
                    case,
                    "+".join(str(l) for l in selected.best_subset),
                    f"{selected.solution.expected_wallclock / 86_400:.2f}",
                    f"{all_levels.expected_wallclock / 86_400:.2f}",
                    f"{100 * gain:.2f}%",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["case", "best levels", "E(T_w) days", "all levels (days)", "gain"],
        rows,
        title="Extension: checkpoint-level selection (8 subsets searched)",
    )
    record_result("ext_level_selection", table)
    # selection can never lose to the full stack
    for row in rows:
        assert float(row[2]) <= float(row[3]) * (1 + 1e-9)


def test_bench_sensitivity(benchmark, record_result):
    params = make_params(3e6, "8-4-2-1")

    def run():
        out = {}
        for perturbation in (0.1, 0.3, -0.3):
            out[perturbation] = sensitivity_report(
                params, relative_perturbation=perturbation
            )
        return out

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for perturbation, entries in reports.items():
        for entry in entries:
            rows.append(
                [
                    entry.parameter,
                    f"{100 * perturbation:+.0f}%",
                    f"{100 * entry.regret:.3f}%",
                    f"{entry.elasticity:.4f}",
                ]
            )
    table = format_table(
        ["misestimated input", "error", "wall-clock regret", "elasticity"],
        rows,
        title="Extension: sensitivity of the optimized configuration",
    )
    record_result("ext_sensitivity", table)
    for entries in reports.values():
        for entry in entries:
            assert entry.regret >= -1e-9
            assert entry.regret < 0.25  # flat near the optimum


def test_bench_retry_correction(benchmark, record_result):
    """Retry-aware correction vs first-order model vs simulation, per case:
    the two analytic models must *bracket* the simulated mean
    (plain <= simulated <= corrected; see corrections module docstring)."""
    import numpy as np

    cases = ("16-12-8-4", "8-4-2-1", "4-2-1-0.5")
    n_runs = max(5, bench_runs() // 3)

    def run():
        rows = []
        for case in cases:
            params = make_params(3e6, case)
            sol = optimize(params).solution
            sim = simulate_solution(
                params, sol, n_runs=n_runs, seed=31
            ).mean_wallclock
            plain = sol.expected_wallclock
            corrected, _ = corrected_wallclock(
                params, np.asarray(sol.intervals), sol.scale
            )
            rows.append(
                [
                    case,
                    f"{plain / 86_400:.2f}",
                    f"{corrected / 86_400:.2f}",
                    f"{sim / 86_400:.2f}",
                    f"{100 * abs(plain - sim) / sim:.1f}%",
                    f"{100 * abs(corrected - sim) / sim:.1f}%",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        [
            "case",
            "first-order (days)",
            "retry-aware (days)",
            "simulated (days)",
            "err plain",
            "err corrected",
        ],
        rows,
        title=(
            "Extension: retry-aware model correction (THEORY.md section 8) "
            "- the analytic pair brackets the simulated mean"
        ),
    )
    record_result("ext_retry_correction", table)
    for row in rows:
        plain, corrected, simulated = (float(row[i]) for i in (1, 2, 3))
        assert plain <= simulated * 1.03, row[0]
        assert simulated <= corrected * 1.05, row[0]


def test_bench_corrected_optimizer(benchmark, record_result):
    """Optimizing against the corrected objective: does it win in sim?"""
    params = make_params(3e6, "16-12-8-4")
    n_runs = max(5, bench_runs() // 3)

    def run():
        plain_sol = optimize(params).solution
        corr_sol = optimize(corrected_parameters(params)).solution
        plain_sim = simulate_solution(
            params, plain_sol, n_runs=n_runs, seed=77
        ).mean_wallclock
        corr_sim = simulate_solution(
            params, corr_sol, n_runs=n_runs, seed=77
        ).mean_wallclock
        return plain_sol, corr_sol, plain_sim, corr_sim

    plain_sol, corr_sol, plain_sim, corr_sim = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    table = format_table(
        ["optimizer", "N*", "x4", "simulated days"],
        [
            [
                "first-order",
                f"{plain_sol.scale:.0f}",
                f"{plain_sol.intervals[-1]:.0f}",
                f"{plain_sim / 86_400:.2f}",
            ],
            [
                "retry-aware",
                f"{corr_sol.scale:.0f}",
                f"{corr_sol.intervals[-1]:.0f}",
                f"{corr_sim / 86_400:.2f}",
            ],
        ],
        title="Extension: optimizing against the retry-aware objective",
    )
    record_result("ext_corrected_optimizer", table)
    assert corr_sim <= plain_sim * 1.02


def test_bench_pareto(benchmark, record_result):
    params = make_params(3e6, "8-4-2-1")
    result = benchmark.pedantic(
        pareto_sweep, args=(params,), kwargs={"n_points": 14}, rounds=1, iterations=1
    )
    rows = [
        [
            f"{p.scale / 1000:.0f}k",
            f"{p.wallclock / 86_400:.1f}",
            f"{p.efficiency:.4f}",
        ]
        for p in result.frontier
    ]
    table = format_table(
        ["scale", "E(T_w) days", "efficiency"],
        rows,
        title=(
            "Extension: wall-clock vs efficiency Pareto frontier "
            f"({len(result.frontier)} of {len(result.points)} swept scales)"
        ),
    )
    record_result("ext_pareto", table)
    assert result.frontier
