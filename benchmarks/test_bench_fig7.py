"""Bench: Figure 7 — efficiency (processor utilization) of all strategies.

Paper shape: SL(opt-scale) achieves the best efficiency (tiny scale,
long wall-clock); ML(opt-scale) is second and beats both ori-scale
solutions, which is its selling point — short wall-clock AND better
utilization.
"""

from benchmarks.conftest import bench_jobs, bench_runs
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig7 import run_fig7
from repro.util.tablefmt import format_table

STRATEGIES = ("ml-opt-scale", "sl-opt-scale", "ml-ori-scale", "sl-ori-scale")


def test_bench_fig7(benchmark, record_result):
    def run():
        fig5 = run_fig5(n_runs=max(5, bench_runs() // 3), jobs=bench_jobs())
        return run_fig7(fig5)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for case, row in result.efficiencies.items():
        rows.append([case] + [f"{row[s]:.4f}" for s in STRATEGIES])
    table = format_table(
        ["case", *STRATEGIES],
        rows,
        title=f"Figure 7 - efficiency (T_e={result.te_core_days:.0f} core-days)",
    )
    record_result("fig7", table)

    for case, row in result.efficiencies.items():
        assert row["sl-opt-scale"] >= row["ml-ori-scale"], case
        assert row["ml-opt-scale"] >= row["ml-ori-scale"], case
        assert row["ml-opt-scale"] >= row["sl-ori-scale"], case
