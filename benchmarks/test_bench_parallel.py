"""Perf smoke bench: the parallel execution layer.

Runs a 100-replica ensemble serially and through the parallel executor,
asserts the results are bit-identical (the seed-stability guarantee),
and records the wall-clocks — plus the per-phase (solve / simulate /
aggregate) breakdown of a small Fig. 5 driver run — to
``benchmarks/results/BENCH_parallel.json`` so the perf trajectory is
tracked from PR to PR.

The >= 2x speedup assertion only applies on machines with >= 4 cores
(process-pool overhead dominates on small hosts; on a 1-core CI box the
parallel path is still exercised, just not asserted faster).
"""

from __future__ import annotations

import time

from benchmarks.conftest import RESULTS_DIR, bench_runs
from repro.core.memo import SOLVER_CACHE
from repro.experiments.fig5 import run_fig5
from repro.parallel.executor import cpu_count, make_executor, resolve_jobs
from repro.parallel.timing import PhaseTimer, write_bench_json
from repro.sim.config import SimulationConfig
from repro.sim.ensemble import run_ensemble

#: A fast but non-trivial configuration: dozens of failures per run, so a
#: replica costs milliseconds and 100 replicas dwarf pool start-up costs.
SMOKE_CONFIG = SimulationConfig(
    productive_seconds=80_000.0,
    intervals=(160, 64, 32, 16),
    checkpoint_costs=(1.0, 2.5, 4.0, 12.0),
    recovery_costs=(1.0, 2.5, 4.0, 12.0),
    failure_rates=(4e-4, 2e-4, 1e-4, 5e-5),
    allocation_period=30.0,
    jitter=0.3,
)
SMOKE_SEED = 20140604


def test_bench_parallel_smoke(benchmark):
    n_runs = max(100, bench_runs(100))
    jobs = resolve_jobs(0)  # all cores (REPRO_JOBS-independent on purpose)

    start = time.perf_counter()
    serial = run_ensemble(SMOKE_CONFIG, n_runs=n_runs, seed=SMOKE_SEED)
    serial_seconds = time.perf_counter() - start

    with make_executor(jobs, workload=n_runs) as executor:
        backend = executor.kind

        def parallel_run():
            return run_ensemble(
                SMOKE_CONFIG, n_runs=n_runs, seed=SMOKE_SEED, executor=executor
            )

        # warmup_rounds spawns the pool workers before the measured round.
        parallel = benchmark.pedantic(
            parallel_run, rounds=1, iterations=1, warmup_rounds=1
        )
    parallel_seconds = benchmark.stats.stats.mean

    # The headline guarantee: parallelism never changes the numbers.
    assert parallel == serial

    # Phase breakdown of a small end-to-end driver run (solve is memoized,
    # so clear first to measure a cold solve).
    SOLVER_CACHE.clear()
    timer = PhaseTimer()
    run_fig5(cases=("4-2-1-0.5",), n_runs=4, seed=1, timer=timer, jobs=jobs)

    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else 0.0
    payload = {
        "cpu_count": cpu_count(),
        "ensemble": {
            "n_runs": n_runs,
            "backend": backend,
            "jobs": jobs,
            "serial_seconds": round(serial_seconds, 4),
            "parallel_seconds": round(parallel_seconds, 4),
            "speedup": round(speedup, 3),
            "results_identical": True,
        },
        "fig5_small_phases_seconds": {
            phase: round(seconds, 4)
            for phase, seconds in timer.report().items()
        },
        "solver_cache": {
            "hits": SOLVER_CACHE.stats().hits,
            "misses": SOLVER_CACHE.stats().misses,
        },
    }
    path = write_bench_json(RESULTS_DIR / "BENCH_parallel.json", payload)
    print(f"\n[saved to {path}]\n{payload}")

    # Perf acceptance: >= 2x on a >= 4-core machine for 100 replicas.
    if cpu_count() >= 4 and backend == "process":
        assert speedup >= 2.0, (
            f"expected >= 2x ensemble speedup on {cpu_count()} cores, "
            f"got {speedup:.2f}x "
            f"({serial_seconds:.2f}s serial vs {parallel_seconds:.2f}s parallel)"
        )
