"""Perf bench: the observability layer's tracing-off fast path.

The engine's hot loop guards every emission site with one attribute read
(``recorder.active``); with the default :data:`~repro.obs.trace.NULL_RECORDER`
nothing else happens.  This bench quantifies that guard on a mini Fig. 5
style ensemble and asserts the projected overhead stays under 5 %.

Methodology (flake-resistant by construction): instead of an A/B
wall-clock comparison — whose noise on shared CI boxes easily exceeds the
effect being measured — the bench (1) measures the untraced ensemble
wall-clock, (2) replays it traced to count the events a run emits, and
(3) micro-times the guard itself over millions of iterations.  The
projected overhead is then

    events_per_ensemble x seconds_per_guard / untraced_seconds

an *upper-bound-style* estimate of the relative cost of tracing-off
instrumentation, stable to scheduler noise because the numerator and
denominator are measured at very different (and individually robust)
scales.  The raw traced/untraced wall-clocks are recorded in
``benchmarks/results/BENCH_obs.json`` for the curious but not asserted.
"""

from __future__ import annotations

import time

from benchmarks.conftest import RESULTS_DIR, bench_runs
from repro.obs.flightrec import FlightRecorder
from repro.obs.metrics import LATENCY_BUCKETS, Histogram
from repro.obs.spans import NULL_SPAN_RECORDER, Span, SpanRecorder
from repro.obs.trace import NULL_RECORDER
from repro.parallel.timing import write_bench_json
from repro.sim.config import SimulationConfig
from repro.sim.ensemble import run_ensemble

#: Failure-heavy but fast: hundreds of events per replica in milliseconds.
OBS_CONFIG = SimulationConfig(
    productive_seconds=40_000.0,
    intervals=(80, 32, 16, 8),
    checkpoint_costs=(1.0, 2.5, 4.0, 12.0),
    recovery_costs=(1.0, 2.5, 4.0, 12.0),
    failure_rates=(8e-4, 4e-4, 2e-4, 1e-4),
    allocation_period=30.0,
    jitter=0.3,
)
OBS_SEED = 20140605
OVERHEAD_BUDGET = 0.05
#: Guard evaluations per emitted event (the engine checks ``active`` at
#: the segment, failure, rollback, and recovery sites; one guard can
#: cover several events, so 2x events is a generous upper bound).
GUARDS_PER_EVENT = 2.0


def _seconds_per_guard(iterations: int = 2_000_000) -> float:
    """Micro-time the ``recorder.active`` hot-loop check."""
    rec = NULL_RECORDER
    best = float("inf")
    for _ in range(3):  # best-of-3 damps scheduler interference
        start = time.perf_counter()
        for _ in range(iterations):
            if rec.active:  # pragma: no cover - never true for NULL_RECORDER
                rec.emit(None)
        best = min(best, time.perf_counter() - start)
    return best / iterations


def _seconds_per_flight_guard(iterations: int = 2_000_000) -> float:
    """Micro-time ``active`` through a :class:`FlightRecorder` wrapper.

    With span recording off the flight recorder's ``active`` property
    forwards to the wrapped null recorder — this is the exact guard the
    ``span()`` fast path evaluates once the server installs its flight
    recorder, so it must price like the bare check.
    """
    rec = FlightRecorder(NULL_SPAN_RECORDER)
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(iterations):
            if rec.active:  # pragma: no cover - inner recorder is off
                rec.emit(None)
        best = min(best, time.perf_counter() - start)
    return best / iterations


def _flight_emit_seconds(spans_per_trace: int = 8, traces: int = 2_000) -> float:
    """Per-span cost of recording through an *active* flight recorder.

    Uses an in-memory :class:`SpanRecorder` sink so the measurement is
    the flight recorder's own bookkeeping (pending map, completion ring,
    slowest-N policy), not file I/O.  Informational: this path only runs
    when span recording is already on.
    """
    inner = SpanRecorder(None, maxlen=1024)
    rec = FlightRecorder(inner, capacity=256, keep_slowest=32)
    total_spans = traces * spans_per_trace
    start = time.perf_counter()
    for t in range(traces):
        trace_id = f"{t:032x}"
        for i in range(spans_per_trace - 1):
            rec.emit(
                Span(
                    name="scheduler.execute",
                    trace_id=trace_id,
                    span_id=f"{i:016x}",
                    parent_id="00" * 8,
                    start=0.0,
                    end=float(i),
                )
            )
        rec.emit(
            Span(
                name="server.request",
                trace_id=trace_id,
                span_id="ff" * 8,
                parent_id=None,
                start=0.0,
                end=float(spans_per_trace),
            )
        )
    return (time.perf_counter() - start) / total_spans


def _observe_seconds(with_exemplar: bool, observations: int = 200_000) -> float:
    """Per-observation cost of the histogram hot path, exemplar on/off."""
    hist = Histogram(buckets=LATENCY_BUCKETS)
    exemplar = "ab" * 16 if with_exemplar else None
    start = time.perf_counter()
    for i in range(observations):
        hist.observe(0.001 * (i % 500), exemplar=exemplar)
    return (time.perf_counter() - start) / observations


def test_bench_obs_null_recorder_overhead(benchmark):
    n_runs = bench_runs(30)

    def untraced_run():
        return run_ensemble(OBS_CONFIG, n_runs=n_runs, seed=OBS_SEED)

    untraced = benchmark.pedantic(
        untraced_run, rounds=1, iterations=1, warmup_rounds=1
    )
    untraced_seconds = benchmark.stats.stats.mean

    start = time.perf_counter()
    traced = run_ensemble(OBS_CONFIG, n_runs=n_runs, seed=OBS_SEED, trace=True)
    traced_seconds = time.perf_counter() - start

    # Tracing is RNG-neutral: identical results either way.
    assert traced.runs == untraced.runs
    events_total = sum(len(t) for t in traced.traces)
    assert events_total > 0

    seconds_per_guard = _seconds_per_guard()
    projected = (
        GUARDS_PER_EVENT * events_total * seconds_per_guard / untraced_seconds
    )

    # The service installs a FlightRecorder wrapper around the span
    # recorder: with recording off its guard must project under the same
    # budget, or wrapping would have silently broken the fast path.
    flight_guard_seconds = _seconds_per_flight_guard()
    flight_projected = (
        GUARDS_PER_EVENT
        * events_total
        * flight_guard_seconds
        / untraced_seconds
    )

    payload = {
        "config": {
            "n_runs": n_runs,
            "seed": OBS_SEED,
            "productive_seconds": OBS_CONFIG.productive_seconds,
        },
        "events_total": events_total,
        "events_per_run": round(events_total / n_runs, 1),
        "seconds_per_guard": seconds_per_guard,
        "guards_per_event": GUARDS_PER_EVENT,
        "untraced_seconds": round(untraced_seconds, 4),
        "traced_seconds": round(traced_seconds, 4),
        "traced_over_untraced": round(traced_seconds / untraced_seconds, 4),
        "projected_overhead_fraction": projected,
        "overhead_budget": OVERHEAD_BUDGET,
        "flight_guard_seconds": flight_guard_seconds,
        "flight_projected_overhead_fraction": flight_projected,
        "flight_emit_seconds": _flight_emit_seconds(),
        "observe_seconds": _observe_seconds(with_exemplar=False),
        "observe_exemplar_seconds": _observe_seconds(with_exemplar=True),
    }
    path = write_bench_json(RESULTS_DIR / "BENCH_obs.json", payload)
    print(f"\n[obs bench] projected NullRecorder overhead: {projected:.5%}")
    print(
        f"[obs bench] projected FlightRecorder-off overhead: "
        f"{flight_projected:.5%}"
    )
    print(f"[saved to {path}]")

    # The tentpole's perf gate: tracing off must stay essentially free —
    # bare null recorder and flight-recorder wrapper alike.
    assert projected < OVERHEAD_BUDGET, payload
    assert flight_projected < OVERHEAD_BUDGET, payload
