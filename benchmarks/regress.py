#!/usr/bin/env python3
"""Benchmark regression gate: fresh ``BENCH_*.json`` vs committed baselines.

The benchmark suites under ``benchmarks/`` export machine-readable
``BENCH_*.json`` files into ``benchmarks/results/``.  This script compares
a curated set of *robust* metrics from those files against the committed
baselines in ``benchmarks/baselines/`` and fails (exit 1) when any metric
regresses beyond the threshold (default: 15% — slower seconds, or fewer
requests per second).

Only stable timing/throughput metrics are gated; noisy derived ratios
(e.g. the obs suite's ``projected_overhead_fraction``, a quotient of two
micro-timings) are deliberately excluded — a gate that cries wolf gets
deleted.  Improvements never fail the gate.

Usage::

    python benchmarks/regress.py                  # compare, exit 1 on regression
    python benchmarks/regress.py --threshold 0.30 # looser gate (CI cold VMs)
    python benchmarks/regress.py --update         # bless current results

CI runs the benchmarks, then this script; run ``--update`` locally (and
commit ``benchmarks/baselines/``) whenever a deliberate performance
change moves a gated metric.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
DEFAULT_RESULTS_DIR = HERE / "results"
DEFAULT_BASELINE_DIR = HERE / "baselines"
DEFAULT_THRESHOLD = 0.15

#: Gated metrics per results file: dotted path -> direction.
#: "lower" = smaller is better (seconds); "higher" = bigger is better
#: (throughput).  A >threshold move in the bad direction fails the gate.
GATED_METRICS: dict[str, dict[str, str]] = {
    "BENCH_batch.json": {
        "batch.speedup": "higher",
        "batch.per_replica_us": "lower",
    },
    "BENCH_cluster.json": {
        "single.items_per_second": "higher",
        "cluster.items_per_second": "higher",
    },
    "BENCH_load.json": {
        "phases.sustained.ok_rps": "higher",
        "phases.sustained.latency_ms.p99": "lower",
        "phases.sustained.transport.reuse_ratio": "higher",
    },
    "BENCH_obs.json": {
        "untraced_seconds": "lower",
        "traced_seconds": "lower",
    },
    "BENCH_parallel.json": {
        "ensemble.serial_seconds": "lower",
        "fig5_small_phases_seconds.solve": "lower",
        "fig5_small_phases_seconds.simulate": "lower",
    },
    "BENCH_service.json": {
        "warm.requests_per_second": "higher",
        "cold_restart.requests_per_second": "higher",
    },
    "BENCH_solve.json": {
        "solve.speedup": "higher",
        "solve.per_config_us": "lower",
    },
}


#: Absolute floors checked against the *fresh* results regardless of what
#: the committed baseline says.  Unlike GATED_METRICS (relative, baseline
#: vs current), these encode hard product requirements: the pooled
#: transport must actually reuse connections under sustained load, even
#: if someone blesses a bad baseline.
ABSOLUTE_FLOORS: dict[str, dict[str, float]] = {
    "BENCH_load.json": {
        "phases.sustained.transport.reuse_ratio": 0.95,
    },
}


def dotted_get(payload: dict, path: str):
    """Resolve ``"a.b.c"`` into nested dicts; returns None when absent."""
    node = payload
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def load(path: Path) -> dict | None:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        return None


def update_baselines(results_dir: Path, baseline_dir: Path) -> int:
    baseline_dir.mkdir(parents=True, exist_ok=True)
    blessed = 0
    for name in sorted(GATED_METRICS):
        src = results_dir / name
        if not src.is_file():
            print(f"skip {name}: no fresh result in {results_dir}")
            continue
        shutil.copyfile(src, baseline_dir / name)
        print(f"blessed {name} -> {baseline_dir / name}")
        blessed += 1
    if blessed == 0:
        print("nothing blessed: run the benchmark suites first", file=sys.stderr)
        return 2
    return 0


def compare(
    results_dir: Path, baseline_dir: Path, threshold: float
) -> int:
    rows: list[tuple[str, str, float, float, float, str]] = []
    regressions = 0
    missing_baselines = 0
    for name, metrics in sorted(GATED_METRICS.items()):
        current = load(results_dir / name)
        baseline = load(baseline_dir / name)
        if current is None:
            print(f"skip {name}: no fresh result in {results_dir}")
            continue
        if baseline is None:
            print(
                f"missing baseline {baseline_dir / name} — "
                "run `python benchmarks/regress.py --update` and commit it",
                file=sys.stderr,
            )
            missing_baselines += 1
            continue
        for path, direction in sorted(metrics.items()):
            base_value = dotted_get(baseline, path)
            cur_value = dotted_get(current, path)
            if base_value is None or cur_value is None:
                print(
                    f"skip {name}:{path}: metric absent "
                    f"(baseline={base_value!r}, current={cur_value!r})"
                )
                continue
            base_value = float(base_value)
            cur_value = float(cur_value)
            if base_value == 0.0:
                print(f"skip {name}:{path}: zero baseline")
                continue
            # Positive change = bad direction, as a fraction of baseline.
            if direction == "lower":
                change = (cur_value - base_value) / base_value
            else:
                change = (base_value - cur_value) / base_value
            status = "ok"
            if change > threshold:
                status = "REGRESSION"
                regressions += 1
            rows.append((name, path, base_value, cur_value, change, status))
        for path, floor in sorted(ABSOLUTE_FLOORS.get(name, {}).items()):
            cur_value = dotted_get(current, path)
            if cur_value is None:
                print(f"skip {name}:{path}: floored metric absent")
                continue
            cur_value = float(cur_value)
            status = "ok"
            if cur_value < floor:
                status = "BELOW FLOOR"
                regressions += 1
            print(
                f"floor {name}:{path}: {cur_value:.6g} "
                f"(must be >= {floor:.6g})  {status}"
            )

    if rows:
        width = max(len(f"{n}:{p}") for n, p, *_ in rows)
        print(
            f"{'metric':<{width}}  {'baseline':>12}  {'current':>12}"
            f"  {'worse by':>9}  status"
        )
        for name, path, base_value, cur_value, change, status in rows:
            print(
                f"{f'{name}:{path}':<{width}}  {base_value:>12.6g}"
                f"  {cur_value:>12.6g}  {change:>8.1%}  {status}"
            )
    if missing_baselines:
        return 2
    if regressions:
        print(
            f"\n{regressions} metric(s) regressed more than "
            f"{threshold:.0%} against the committed baselines",
            file=sys.stderr,
        )
        return 1
    if rows:
        print(f"\nall gated metrics within {threshold:.0%} of baseline")
        return 0
    print("no metrics compared (run the benchmark suites first)", file=sys.stderr)
    return 2


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir",
        type=Path,
        default=DEFAULT_RESULTS_DIR,
        help="directory with fresh BENCH_*.json (default: benchmarks/results)",
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=DEFAULT_BASELINE_DIR,
        help="committed baselines (default: benchmarks/baselines)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help=(
            "max tolerated fractional regression before failing "
            f"(default {DEFAULT_THRESHOLD})"
        ),
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="bless the current results as the new baselines",
    )
    args = parser.parse_args(argv)
    if args.threshold <= 0:
        parser.error(f"--threshold must be positive, got {args.threshold}")
    if args.update:
        return update_baselines(args.results_dir, args.baseline_dir)
    return compare(args.results_dir, args.baseline_dir, args.threshold)


if __name__ == "__main__":
    raise SystemExit(main())
