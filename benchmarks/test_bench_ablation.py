"""Ablation benches for the design choices called out in DESIGN.md §5.

Each test isolates one design decision and quantifies its effect:

* the outer mu-iteration (Algorithm 1) vs trusting the initial
  productive-time-based mu;
* Young-formula initialization (Formula 25) vs naive all-ones init;
* Gauss-Seidel vs Jacobi sweeps in the interval fixed point;
* event-driven vs literal-tick engine throughput;
* exponential vs Weibull/lognormal failure arrivals (model robustness);
* cost jitter on/off (mean preservation).
"""

import numpy as np

from benchmarks.conftest import bench_runs
from repro.core.algorithm1 import optimize
from repro.core.multilevel import solve_inner
from repro.core.solutions import ml_opt_scale
from repro.core.wallclock import self_consistent_wallclock
from repro.experiments.config import make_params
from repro.failures.distributions import LognormalArrivals, WeibullArrivals
from repro.sim.config import SimulationConfig
from repro.sim.engine import simulate
from repro.sim.failure_injection import ScriptedFailures
from repro.sim.runner import simulate_solution
from repro.sim.tick import simulate_ticks
from repro.util.tablefmt import format_table


def _params():
    return make_params(3e6, "8-4-2-1")


def test_bench_ablation_outer_iteration(benchmark, record_result):
    """Without the outer loop, mu is based on the failure-free productive
    time and underestimates failures; the resulting configuration is
    measurably worse under the exact self-consistent objective."""
    params = _params()

    def solve_both():
        full = optimize(params).solution
        b0 = params.failure_slope(params.productive_time(params.scale_upper_bound))
        one_shot = solve_inner(params, b0)
        return full, one_shot

    full, one_shot = benchmark.pedantic(solve_both, rounds=1, iterations=1)
    e_full, _ = self_consistent_wallclock(
        params, np.asarray(full.intervals), full.scale
    )
    e_one, _ = self_consistent_wallclock(
        params, np.asarray(one_shot.intervals), one_shot.scale
    )
    table = format_table(
        ["variant", "N", "E(T_w) days (self-consistent)"],
        [
            ["Algorithm 1 (outer loop on)", f"{full.scale:.0f}", f"{e_full/86400:.3f}"],
            ["single inner solve (loop off)", f"{one_shot.scale:.0f}", f"{e_one/86400:.3f}"],
        ],
        title="Ablation: outer mu-iteration",
    )
    record_result("ablation_outer", table)
    assert e_full <= e_one * (1 + 1e-9)


def test_bench_ablation_young_init(benchmark, record_result):
    """Young init (Formula 25) vs naive all-ones: fewer inner sweeps."""
    params = _params()
    b = params.failure_slope(40 * 86_400.0)

    def solve_both():
        young = solve_inner(params, b)
        naive = solve_inner(params, b, x0=np.ones(4))
        return young, naive

    young, naive = benchmark.pedantic(solve_both, rounds=1, iterations=1)
    table = format_table(
        ["init", "inner sweeps", "E(T_w) days"],
        [
            ["Young (Formula 25)", young.iterations, f"{young.expected_wallclock/86400:.3f}"],
            ["naive all-ones", naive.iterations, f"{naive.expected_wallclock/86400:.3f}"],
        ],
        title="Ablation: inner-solver initialization",
    )
    record_result("ablation_young_init", table)
    # both reach the same optimum; Young must not be slower
    assert abs(young.expected_wallclock - naive.expected_wallclock) < 1e-3 * (
        young.expected_wallclock
    )
    assert young.iterations <= naive.iterations + 2


def test_bench_ablation_sweep_order(benchmark, record_result):
    """Gauss-Seidel vs Jacobi interval sweeps: same fixed point."""
    params = _params()
    b = params.failure_slope(40 * 86_400.0)

    def solve_both():
        gs = solve_inner(params, b, gauss_seidel=True)
        jac = solve_inner(params, b, gauss_seidel=False)
        return gs, jac

    gs, jac = benchmark.pedantic(solve_both, rounds=1, iterations=1)
    table = format_table(
        ["sweep", "inner sweeps", "E(T_w) days"],
        [
            ["Gauss-Seidel", gs.iterations, f"{gs.expected_wallclock/86400:.3f}"],
            ["Jacobi", jac.iterations, f"{jac.expected_wallclock/86400:.3f}"],
        ],
        title="Ablation: fixed-point sweep order",
    )
    record_result("ablation_sweep", table)
    assert abs(gs.expected_wallclock - jac.expected_wallclock) < 1e-4 * (
        gs.expected_wallclock
    )


def test_bench_ablation_engine_speed(benchmark, record_result):
    """Event-driven vs literal 1 s ticks: identical semantics, the event
    engine is what makes exascale ensembles affordable."""
    import time

    cfg = SimulationConfig(
        productive_seconds=20_000.0,
        intervals=(100, 50, 20, 10),
        checkpoint_costs=(1.0, 2.5, 4.0, 9.0),
        recovery_costs=(1.0, 2.5, 4.0, 9.0),
        failure_rates=(0, 0, 0, 0),
        allocation_period=15.0,
        jitter=0.0,
    )
    trace = [(5_000.0, 1), (12_000.0, 2), (18_000.0, 4)]

    def run_event():
        return simulate(cfg, seed=0, injector=ScriptedFailures(trace))

    event_result = benchmark.pedantic(run_event, rounds=3, iterations=1)

    t0 = time.perf_counter()
    tick_result = simulate_ticks(cfg, seed=0, injector=ScriptedFailures(trace))
    tick_elapsed = time.perf_counter() - t0
    t0 = time.perf_counter()
    run_event()
    event_elapsed = max(time.perf_counter() - t0, 1e-7)

    table = format_table(
        ["engine", "wallclock simulated (s)", "runtime (s)"],
        [
            ["event-driven", f"{event_result.wallclock:.1f}", f"{event_elapsed:.5f}"],
            ["1s ticks", f"{tick_result.wallclock:.1f}", f"{tick_elapsed:.5f}"],
        ],
        title=(
            "Ablation: engine throughput "
            f"(speedup ~{tick_elapsed / event_elapsed:.0f}x, identical result "
            f"diff {abs(event_result.wallclock - tick_result.wallclock):.2f}s)"
        ),
    )
    record_result("ablation_engine", table)
    assert abs(event_result.wallclock - tick_result.wallclock) <= 4.0
    assert event_elapsed < tick_elapsed


def test_bench_ablation_arrival_distribution(benchmark, record_result):
    """The optimizer assumes only mean failure counts; Weibull/lognormal
    arrivals with the same rates change the simulated mean only moderately."""
    params = _params()
    sol = ml_opt_scale(params)
    n_runs = max(5, bench_runs() // 3)

    def run_all():
        out = {}
        out["exponential"] = simulate_solution(
            params, sol, n_runs=n_runs, seed=0
        ).mean_wallclock
        out["weibull(0.7)"] = simulate_solution(
            params, sol, n_runs=n_runs, seed=0, process=WeibullArrivals(0.7)
        ).mean_wallclock
        out["lognormal(1.0)"] = simulate_solution(
            params, sol, n_runs=n_runs, seed=0, process=LognormalArrivals(1.0)
        ).mean_wallclock
        return out

    means = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[k, f"{v / 86_400.0:.2f}"] for k, v in means.items()]
    table = format_table(
        ["arrival process", "mean wallclock (days)"],
        rows,
        title="Ablation: failure inter-arrival distribution (same mean rates)",
    )
    record_result("ablation_arrivals", table)
    base = means["exponential"]
    for name, value in means.items():
        assert abs(value - base) / base < 0.35, name


def test_bench_ablation_jitter(benchmark, record_result):
    """+-30 % uniform cost jitter is mean-preserving in the ensemble."""
    params = _params()
    sol = ml_opt_scale(params)
    n_runs = max(10, bench_runs() // 2)

    def run_both():
        with_jitter = simulate_solution(
            params, sol, n_runs=n_runs, seed=1, jitter=0.3
        ).mean_wallclock
        without = simulate_solution(
            params, sol, n_runs=n_runs, seed=1, jitter=0.0
        ).mean_wallclock
        return with_jitter, without

    with_jitter, without = benchmark.pedantic(run_both, rounds=1, iterations=1)
    table = format_table(
        ["jitter", "mean wallclock (days)"],
        [
            ["+-30% (paper)", f"{with_jitter / 86_400.0:.2f}"],
            ["off", f"{without / 86_400.0:.2f}"],
        ],
        title="Ablation: checkpoint/recovery cost jitter",
    )
    record_result("ablation_jitter", table)
    assert abs(with_jitter - without) / without < 0.1
